package monitor

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"nektarg/internal/telemetry"
)

// DefaultFlightSpans is how many trailing span records per track a flight
// dump carries by default.
const DefaultFlightSpans = 256

// DefaultFlightLimit bounds how many dumps one run may write: the first trip
// is the interesting one; a cascade of secondary trips must not flood the
// disk with near-identical dumps.
const DefaultFlightLimit = 3

// DefaultAnomalyFlightLimit bounds performance-anomaly-triggered dumps
// (DumpAnomaly). It is a separate budget from DefaultFlightLimit on
// purpose: performance anomalies are expected to fire on long healthy runs
// (that is the history plane doing its job), and letting them draw down the
// shared cap would leave nothing for the dump that matters most — the
// watchdog trip or rank panic at the end (-flight-max starvation).
const DefaultAnomalyFlightLimit = 2

// FlightTrack is one track's black-box excerpt: the last spans from the
// telemetry ring plus the full gauge and stage aggregates at dump time.
type FlightTrack struct {
	Track        string                          `json:"track"`
	Spans        []telemetry.SpanRecord          `json:"spans"`
	DroppedSpans int64                           `json:"dropped_spans"`
	Stages       map[string]telemetry.StageStats `json:"stages"`
	Gauges       map[string]telemetry.GaugeStats `json:"gauges"`
}

// FlightDump is the on-disk flight-*.json document: why the recorder fired,
// the health timeline, and every track's recent activity — enough to
// diagnose a dead run without re-running it.
type FlightDump struct {
	Time   time.Time `json:"time"`
	Reason string    `json:"reason"`
	// Incarnation and Transport identify which world incarnation (distributed
	// runs redial after a process loss) and transport kind produced the dump,
	// so post-mortem dumps from restarted ranks are distinguishable.
	Incarnation int              `json:"incarnation,omitempty"`
	Transport   string           `json:"transport,omitempty"`
	Trip        *Event           `json:"trip,omitempty"`
	Verdict     Verdict          `json:"verdict"`
	Events      []Event          `json:"events"`
	Tracks      []FlightTrack    `json:"tracks"`
	Imbalance   []StageImbalance `json:"imbalance,omitempty"`
	// Insitu is the in-situ pipeline's drop/staleness accounting at dump
	// time (the observer's SnapshotMeta document), present when an in-situ
	// source is wired. A crashed run's last flight dump then answers "was the
	// observer keeping up?" next to "which rank died?".
	Insitu json.RawMessage `json:"insitu,omitempty"`
}

// FlightRecorder dumps the observability black box on watchdog trips and
// rank panics. Safe for concurrent use; a nil recorder ignores every call.
type FlightRecorder struct {
	mu           sync.Mutex
	dir          string
	maxSpans     int
	limit        int
	dumps        []string
	anomalyLimit int
	anomalyDumps []string
	source       func() []*telemetry.Recorder
	health       *Health
	insitu       func() ([]byte, error) // in-situ meta source; nil = omit
	now          func() time.Time       // test seam

	incarnation int                       // stamped into dumps; see SetRunLabels
	transport   string                    // transport kind ("local", "tcp", ...)
	onDump      func(path, reason string) // fired after each successful dump (fleet journal)
}

// NewFlightRecorder builds a recorder writing into dir (created on demand),
// reading tracks from source and the event timeline from health.
func NewFlightRecorder(dir string, source func() []*telemetry.Recorder, health *Health) *FlightRecorder {
	if dir == "" {
		dir = "."
	}
	return &FlightRecorder{
		dir: dir, maxSpans: DefaultFlightSpans, limit: DefaultFlightLimit,
		anomalyLimit: DefaultAnomalyFlightLimit,
		source:       source, health: health, now: time.Now,
	}
}

// SetMaxSpans overrides how many trailing spans per track a dump keeps.
func (f *FlightRecorder) SetMaxSpans(n int) {
	if f == nil || n < 1 {
		return
	}
	f.mu.Lock()
	f.maxSpans = n
	f.mu.Unlock()
}

// SetLimit overrides the per-run dump cap (default DefaultFlightLimit).
// cmd/nektarg exposes it as -flight-max.
func (f *FlightRecorder) SetLimit(n int) {
	if f == nil || n < 1 {
		return
	}
	f.mu.Lock()
	f.limit = n
	f.mu.Unlock()
}

// Limit returns the per-run dump cap.
func (f *FlightRecorder) Limit() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.limit
}

// SetAnomalyLimit overrides the per-run cap on anomaly-triggered dumps
// (default DefaultAnomalyFlightLimit). cmd/nektarg exposes it as
// -flight-anomaly-max.
func (f *FlightRecorder) SetAnomalyLimit(n int) {
	if f == nil || n < 1 {
		return
	}
	f.mu.Lock()
	f.anomalyLimit = n
	f.mu.Unlock()
}

// AnomalyLimit returns the per-run anomaly dump cap.
func (f *FlightRecorder) AnomalyLimit() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.anomalyLimit
}

// SetInsituSource wires an in-situ metadata provider (the observer's
// SnapshotMeta) whose JSON document is embedded in every dump.
func (f *FlightRecorder) SetInsituSource(fn func() ([]byte, error)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.insitu = fn
	f.mu.Unlock()
}

// SetRunLabels stamps subsequent dumps with the current world incarnation id
// and transport kind. The distributed supervisor refreshes it on every
// redial so dumps from restarted worlds are distinguishable.
func (f *FlightRecorder) SetRunLabels(incarnation int, transport string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.incarnation = incarnation
	f.transport = transport
	f.mu.Unlock()
}

// OnDump installs a hook fired (outside the lock) after every successful dump
// with the written path and the reason. The fleet journal records each dump
// as a run event so dumps stay discoverable after the fact.
func (f *FlightRecorder) OnDump(fn func(path, reason string)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.onDump = fn
	f.mu.Unlock()
}

// Dumps returns the paths written so far against the shared budget
// (watchdog trips, panics, manual dumps).
func (f *FlightRecorder) Dumps() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.dumps...)
}

// AnomalyDumps returns the paths written so far against the anomaly budget.
func (f *FlightRecorder) AnomalyDumps() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.anomalyDumps...)
}

// Dump writes one flight-*.json capturing every track's recent events, gauge
// values and the health history. trip may be nil (manual dump, rank panic).
// Returns the written path; once the per-run dump limit is reached it returns
// "" with no error.
func (f *FlightRecorder) Dump(reason string, trip *Event) (string, error) {
	return f.dump(reason, trip, false)
}

// DumpAnomaly writes a flight dump charged to the separate performance-
// anomaly budget (SetAnomalyLimit), so anomaly captures never starve the
// watchdog/panic dumps of the shared cap. The history plane's OnAnomaly
// hook is the caller.
func (f *FlightRecorder) DumpAnomaly(reason string) (string, error) {
	return f.dump(reason, nil, true)
}

func (f *FlightRecorder) dump(reason string, trip *Event, anomaly bool) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	if anomaly {
		if len(f.anomalyDumps) >= f.anomalyLimit {
			f.mu.Unlock()
			return "", nil
		}
	} else if len(f.dumps) >= f.limit {
		f.mu.Unlock()
		return "", nil
	}
	dir, maxSpans := f.dir, f.maxSpans
	insitu := f.insitu
	incarnation, transport := f.incarnation, f.transport
	onDump := f.onDump
	ts := f.now()
	f.mu.Unlock()

	var recs []*telemetry.Recorder
	if f.source != nil {
		recs = f.source()
	}
	d := &FlightDump{
		Time: ts, Reason: reason, Trip: trip,
		Incarnation: incarnation, Transport: transport,
		Verdict: f.health.Verdict(), Events: f.health.Events(),
	}
	snaps := make([]*telemetry.Snapshot, 0, len(recs))
	for _, r := range recs {
		s := r.Snapshot()
		if s == nil {
			continue
		}
		snaps = append(snaps, s)
		spans := r.Spans()
		if len(spans) > maxSpans {
			spans = spans[len(spans)-maxSpans:]
		}
		d.Tracks = append(d.Tracks, FlightTrack{
			Track: s.Track, Spans: spans, DroppedSpans: r.DroppedSpans(),
			Stages: s.Stages, Gauges: s.Gauges,
		})
	}
	d.Imbalance = AnalyzeImbalance(snaps)
	if insitu != nil {
		if meta, err := insitu(); err == nil && json.Valid(meta) {
			d.Insitu = json.RawMessage(meta)
		}
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("monitor: flight dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("flight-%s.json", ts.UTC().Format("20060102T150405.000000000")))
	tmp := path + ".tmp"
	file, err := os.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("monitor: flight dump: %w", err)
	}
	enc := json.NewEncoder(file)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		file.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("monitor: flight dump: %w", err)
	}
	if err := file.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("monitor: flight dump: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("monitor: flight dump: %w", err)
	}
	f.mu.Lock()
	if anomaly {
		f.anomalyDumps = append(f.anomalyDumps, path)
	} else {
		f.dumps = append(f.dumps, path)
	}
	f.mu.Unlock()
	if onDump != nil {
		onDump(path, reason)
	}
	return path, nil
}
