// Integration tests live in an external test package so they can exercise
// the real solver → watchdog → monitor path (nektar3d imports monitor, so
// the in-package tests cannot import it back).
package monitor_test

import (
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"nektarg/internal/monitor"
	"nektarg/internal/mpi"
	"nektarg/internal/nektar3d"
	"nektarg/internal/telemetry"
)

// TestNektar3DNaNInjectionTrips is the acceptance scenario from the issue: a
// nektar3d run with monitoring enabled has a NaN injected into a velocity
// field; the next Step must fail with a guard error instead of silently
// corrupting, the health verdict must flip, and the trip must produce a
// flight-*.json carrying the solver's telemetry.
func TestNektar3DNaNInjectionTrips(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	m := monitor.New(reg, monitor.Options{FlightDir: dir})

	g := nektar3d.NewGrid(1, 1, 2, 4, 1, 1, 1, true, true, false)
	s := nektar3d.NewSolver(g, 0.1, 0.01)
	s.Rec = reg.NewRecorder("patch:test")
	s.Watch = m.Health().Watch("patch:test")

	// A few healthy steps first: watchdogs observe converged solves.
	for i := 0; i < 3; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("healthy step %d: %v", i, err)
		}
	}
	if !m.Health().Healthy() {
		t.Fatal("run unhealthy before injection")
	}

	// Inject the corruption the guard exists to catch.
	s.U[len(s.U)/2] = math.NaN()
	err := s.Step()
	if err == nil {
		t.Fatal("Step succeeded on a NaN field")
	}
	if !strings.Contains(err.Error(), "non-finite") {
		t.Fatalf("unexpected step error: %v", err)
	}
	if m.Health().Healthy() {
		t.Fatal("NaN guard trip did not flip the verdict")
	}
	v := m.Health().Verdict()
	if v.Status != "unhealthy" || v.Trips == 0 {
		t.Fatalf("verdict = %+v", v)
	}

	dumps := m.Flight().Dumps()
	if len(dumps) != 1 {
		t.Fatalf("flight dumps = %v, want 1", dumps)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var d monitor.FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Trip == nil || d.Trip.Watchdog != "nan-guard" || d.Trip.Track != "patch:test" {
		t.Fatalf("dump trip = %+v", d.Trip)
	}
	found := false
	for _, tr := range d.Tracks {
		if tr.Track == "patch:test" {
			found = true
			if tr.Stages["ns.step"].Count == 0 || len(tr.Spans) == 0 {
				t.Fatalf("dump track lacks solver telemetry: %+v", tr.Stages)
			}
		}
	}
	if !found {
		t.Fatalf("dump missing the solver's track; tracks = %d", len(d.Tracks))
	}
}

// TestRankPanicDumpsFlight wires mpi.RunHooked's per-rank panic hook to the
// flight recorder: when one rank of a multi-rank run dies, the black box is
// dumped while every rank's recorder is still intact, so the dump carries the
// recent activity of ALL ranks — including the ones that did not crash.
func TestRankPanicDumpsFlight(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	m := monitor.New(reg, monitor.Options{FlightDir: dir})

	const P = 4
	err := mpi.RunHooked(P, func(world *mpi.Comm) {
		rec := reg.NewRecorder("rank" + string(rune('0'+world.Rank())))
		sp := rec.Begin("work")
		sp.End()
		// The barrier orders every rank's span before the panic, so the dump
		// deterministically holds all four tracks' history.
		world.Barrier()
		if world.Rank() == 2 {
			panic("injected rank failure")
		}
	}, func(rank int, recovered any) {
		m.Health().Record("rank-panic", "world", monitor.SevCritical,
			"rank panicked", float64(rank))
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 panicked") {
		t.Fatalf("RunHooked error = %v", err)
	}

	if m.Health().Healthy() {
		t.Fatal("rank panic did not flip the verdict")
	}
	dumps := m.Flight().Dumps()
	if len(dumps) != 1 {
		t.Fatalf("flight dumps = %v, want 1", dumps)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var d monitor.FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Tracks) != P {
		t.Fatalf("dump carries %d tracks, want every rank (%d)", len(d.Tracks), P)
	}
	for _, tr := range d.Tracks {
		if tr.Stages["work"].Count != 1 {
			t.Fatalf("track %q lost its span history: %+v", tr.Track, tr.Stages)
		}
	}
	if d.Trip == nil || d.Trip.Watchdog != "rank-panic" || d.Trip.Value != 2 {
		t.Fatalf("dump trip = %+v", d.Trip)
	}
}
