package monitor_test

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nektarg/internal/fleet"
	"nektarg/internal/monitor"
	"nektarg/internal/mpi"
	"nektarg/internal/mpi/tcptransport"
	"nektarg/internal/telemetry"
)

// TestScrapeWhileWorldSteps pins the observability contract under load: a
// two-rank TCP world exchanges messages while external scrapers hammer each
// rank's /metrics and /healthz. Every scrape must succeed, and the run must
// finish with the traffic the world generated visible in the exposition.
// The whole arrangement runs under -race in CI — that is the point: scrapes
// read the same counters the stepping ranks write.
func TestScrapeWhileWorldSteps(t *testing.T) {
	const exchanges = 50
	trs, err := tcptransport.Loopback(2)
	if err != nil {
		t.Fatal(err)
	}

	type rankPlane struct {
		reg *telemetry.Registry
		mon *monitor.Monitor
		srv *monitor.Server
	}
	planes := make([]rankPlane, 2)
	for i := range planes {
		reg := telemetry.NewRegistry()
		mon := monitor.New(reg, monitor.Options{})
		// Wire the transport counters the way the CLI does: a TCPStats holder
		// wrapping the dial, its Source feeding /metrics.
		ts := &fleet.TCPStats{}
		tr := trs[i]
		if _, err := ts.Wrap(func() (*tcptransport.Transport, error) { return tr, nil })(); err != nil {
			t.Fatal(err)
		}
		mon.AddStatSource(ts.Source())
		srv, err := mon.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		planes[i] = rankPlane{reg: reg, mon: mon, srv: srv}
	}

	// Scrapers: one goroutine per endpoint per rank, polling until the world
	// is done. Failures are counted, not fatal mid-flight (t.Fatalf must not
	// fire off the test goroutine).
	var done atomic.Bool
	var scrapeErrs atomic.Int64
	var scrapes atomic.Int64
	var swg sync.WaitGroup
	for i := range planes {
		for _, path := range []string{"/metrics", "/healthz"} {
			swg.Add(1)
			go func(base, path string) {
				defer swg.Done()
				for !done.Load() {
					resp, err := http.Get(base + path)
					if err != nil {
						scrapeErrs.Add(1)
						continue
					}
					_, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil || resp.StatusCode != http.StatusOK {
						scrapeErrs.Add(1)
						continue
					}
					scrapes.Add(1)
				}
			}(planes[i].srv.URL(), path)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, tr := range trs {
		wg.Add(1)
		go func(i int, tr *tcptransport.Transport) {
			defer wg.Done()
			errs[i] = mpi.RunOn(tr, func(w *mpi.Comm) {
				rec := planes[i].reg.NewRecorder("solver")
				w.AttachTelemetry(rec)
				for e := 0; e < exchanges; e++ {
					sp := rec.Begin("exchange")
					if w.Rank() == 0 {
						w.Send(1, 100+e, []float64{float64(e)})
						w.Recv(1, 200+e)
					} else {
						w.Recv(0, 100+e)
						w.Send(0, 200+e, []float64{float64(e), 1})
					}
					sp.End()
				}
				w.Barrier()
			})
		}(i, tr)
	}
	wg.Wait()
	done.Store(true)
	swg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
	if n := scrapeErrs.Load(); n != 0 {
		t.Fatalf("%d scrapes failed while the world stepped", n)
	}
	if scrapes.Load() == 0 {
		t.Fatal("no scrape completed while the world stepped")
	}

	// The final exposition must carry both the solver spans and the wire
	// counters the run produced.
	for i := range planes {
		resp, err := http.Get(planes[i].srv.URL() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		out := string(body)
		for _, want := range []string{
			`nektarg_stage_count_total{track="solver",stage="exchange"} 50`,
			"nektarg_traffic_messages_total",
			fmt.Sprintf(`nektarg_transport_frames_sent_total{peer="%d"}`, 1-i),
		} {
			if !strings.Contains(out, want) {
				t.Fatalf("rank %d /metrics missing %q:\n%s", i, want, out)
			}
		}
	}
}
