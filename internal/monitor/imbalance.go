package monitor

import (
	"fmt"
	"sort"
	"strings"

	"nektarg/internal/telemetry"
)

// StageImbalance is the load-balance diagnosis for one stage across tracks:
// the paper's per-stage min/mean/max table sharpened into a verdict — which
// rank is the straggler, how far from balanced the stage is, and how much of
// the run's communication critical path (hop clock) the stage owns.
type StageImbalance struct {
	Stage     string  `json:"stage"`
	Tracks    int     `json:"tracks"`
	Count     int64   `json:"count"`
	MinS      float64 `json:"min_track_s"`
	MeanS     float64 `json:"mean_track_s"`
	MaxS      float64 `json:"max_track_s"`
	Ratio     float64 `json:"imbalance"` // max/mean per-track total; 1 = perfectly balanced
	Straggler string  `json:"straggler"` // track with the largest total
	// StragglerShare is the straggler's fraction of the stage's summed time:
	// 1/Tracks when balanced, →1 when one rank serializes the stage.
	StragglerShare float64 `json:"straggler_share"`
	Hops           int64   `json:"hops"`
	// CriticalShare is the stage's share of the hop-clock advance summed over
	// all stages — which stages own the communication critical path. Nested
	// spans are both charged, so shares are comparable within one nesting
	// level rather than summing to exactly 1 across all stages.
	CriticalShare float64 `json:"critical_share"`
}

// AnalyzeImbalance computes per-stage imbalance diagnoses from per-track
// snapshots. Results are sorted by stage name (deterministic for golden
// tests); FormatImbalanceTable re-sorts by severity for human eyes.
func AnalyzeImbalance(snaps []*telemetry.Snapshot) []StageImbalance {
	type acc struct {
		tracks    int
		count     int64
		min, max  float64
		sum       float64
		straggler string
		hops      int64
	}
	accs := map[string]*acc{}
	var totalHops int64
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for name, st := range s.Stages {
			a := accs[name]
			if a == nil {
				a = &acc{min: st.Total, max: st.Total, straggler: s.Track}
				accs[name] = a
			} else {
				if st.Total < a.min {
					a.min = st.Total
				}
				if st.Total > a.max {
					a.max = st.Total
					a.straggler = s.Track
				}
			}
			a.tracks++
			a.count += st.Count
			a.sum += st.Total
			a.hops += st.Hops
			totalHops += st.Hops
		}
	}
	out := make([]StageImbalance, 0, len(accs))
	for name, a := range accs {
		mean := a.sum / float64(a.tracks)
		ratio := 1.0
		if mean > 0 {
			ratio = a.max / mean
		}
		share := 0.0
		if a.sum > 0 {
			share = a.max / a.sum
		}
		crit := 0.0
		if totalHops > 0 {
			crit = float64(a.hops) / float64(totalHops)
		}
		out = append(out, StageImbalance{
			Stage: name, Tracks: a.tracks, Count: a.count,
			MinS: a.min, MeanS: mean, MaxS: a.max, Ratio: ratio,
			Straggler: a.straggler, StragglerShare: share,
			Hops: a.hops, CriticalShare: crit,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// FormatImbalanceTable renders the analyzer output as a fixed-width report,
// worst imbalance first — the operator's "which rank is slow and where"
// answer, also served at GET /imbalance.
func FormatImbalanceTable(imb []StageImbalance) string {
	rows := append([]StageImbalance(nil), imb...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Ratio != rows[j].Ratio {
			return rows[i].Ratio > rows[j].Ratio
		}
		return rows[i].Stage < rows[j].Stage
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %6s %10s %10s %10s %7s %-18s %6s %6s\n",
		"stage", "tracks", "min/track", "mean/track", "max/track", "imbal", "straggler", "share", "crit%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %6d %10s %10s %10s %6.2fx %-18s %5.0f%% %5.1f%%\n",
			r.Stage, r.Tracks, fmtSeconds(r.MinS), fmtSeconds(r.MeanS), fmtSeconds(r.MaxS),
			r.Ratio, r.Straggler, 100*r.StragglerShare, 100*r.CriticalShare)
	}
	return b.String()
}

// fmtSeconds renders seconds with an adaptive unit (mirrors telemetry.fmtDur).
func fmtSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
