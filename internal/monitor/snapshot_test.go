package monitor

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"nektarg/internal/telemetry"
)

// fakeSnapshot implements SnapshotSource the way insitu.Observer does,
// including the "no frame yet" error contract on the VTK path.
type fakeSnapshot struct {
	meta    []byte
	metaErr error
	vtk     string
	vtkErr  error
}

func (f *fakeSnapshot) SnapshotMeta() ([]byte, error) { return f.meta, f.metaErr }
func (f *fakeSnapshot) SnapshotVTK(w io.Writer) error {
	if f.vtkErr != nil {
		return f.vtkErr
	}
	_, err := io.WriteString(w, f.vtk)
	return err
}

func serveMonitor(t *testing.T, m *Monitor) func(string) (int, []byte, string) {
	t.Helper()
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return func(path string) (int, []byte, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header.Get("Content-Type")
	}
}

// TestSnapshotEndpoints pins the HTTP status contract of the in-situ surface:
// 404 with no source wired, 200 JSON meta / 200 VTK once wired, 503 while the
// observer has no assembled frame yet, 500 when meta marshalling fails.
func TestSnapshotEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewRecorder("rank0").RecordSpan("s", 0, time.Millisecond, 0, 0)
	m := New(reg, Options{})
	get := serveMonitor(t, m)

	// No source wired: both endpoints 404.
	if code, _, _ := get("/snapshot"); code != http.StatusNotFound {
		t.Fatalf("/snapshot without source = %d, want 404", code)
	}
	if code, _, _ := get("/snapshot/vtk"); code != http.StatusNotFound {
		t.Fatalf("/snapshot/vtk without source = %d, want 404", code)
	}

	// Wired but no frame yet: meta 200 (it reports has_frame), vtk 503.
	src := &fakeSnapshot{
		meta:   []byte(`{"has_frame": false}`),
		vtkErr: errors.New("insitu: no assembled frame yet"),
	}
	m.SetSnapshotSource(src)
	code, body, ctype := get("/snapshot")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/snapshot = %d %q", code, ctype)
	}
	if !strings.Contains(string(body), `"has_frame": false`) {
		t.Fatalf("/snapshot body = %s", body)
	}
	if code, _, _ := get("/snapshot/vtk"); code != http.StatusServiceUnavailable {
		t.Fatalf("/snapshot/vtk before first frame = %d, want 503", code)
	}

	// Frame available: the VTK body streams through verbatim.
	src.vtkErr = nil
	src.vtk = "# vtk DataFile Version 3.0\nfake scene\n"
	code, body, _ = get("/snapshot/vtk")
	if code != http.StatusOK || string(body) != src.vtk {
		t.Fatalf("/snapshot/vtk = %d %q", code, body)
	}

	// Meta failure surfaces as 500, not a silent empty document.
	src.metaErr = errors.New("marshal exploded")
	if code, _, _ := get("/snapshot"); code != http.StatusInternalServerError {
		t.Fatalf("/snapshot with failing source = %d, want 500", code)
	}

	// Unwiring restores 404.
	m.SetSnapshotSource(nil)
	if code, _, _ := get("/snapshot"); code != http.StatusNotFound {
		t.Fatalf("/snapshot after unwire = %d, want 404", code)
	}
}

// TestBuildinfoEndpoint: /buildinfo serves the provenance JSON with the
// fields flight dumps and scrapes are attributed by.
func TestBuildinfoEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(reg, Options{})
	get := serveMonitor(t, m)
	code, body, ctype := get("/buildinfo")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/buildinfo = %d %q", code, ctype)
	}
	var bi BuildInfo
	if err := json.Unmarshal(body, &bi); err != nil {
		t.Fatalf("/buildinfo not valid JSON: %v\n%s", err, body)
	}
	if bi.GoVersion == "" || bi.OS == "" || bi.Arch == "" {
		t.Fatalf("buildinfo incomplete: %+v", bi)
	}
	if s := ReadBuildInfo().String(); s == "" {
		t.Fatal("BuildInfo.String() empty")
	}
}

// TestFlightLimitConfigurable pins the -flight-max satellite: the cap is no
// longer hard-coded, and dumps embed the in-situ drop accounting when a
// source is wired.
func TestFlightLimitConfigurable(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	reg.NewRecorder("rank0").RecordSpan("s", 0, time.Millisecond, 0, 0)
	m := New(reg, Options{FlightDir: dir, FlightLimit: 1})
	if got := m.Flight().Limit(); got != 1 {
		t.Fatalf("Limit() = %d, want 1", got)
	}
	m.SetSnapshotSource(&fakeSnapshot{
		meta: []byte(`{"has_frame": true, "transport": {"published": 9, "dropped": 2}}`),
	})

	path, err := m.Flight().Dump("manual", nil)
	if err != nil || path == "" {
		t.Fatalf("first dump: path=%q err=%v", path, err)
	}
	if p2, err := m.Flight().Dump("manual", nil); err != nil || p2 != "" {
		t.Fatalf("dump past configured limit 1: path=%q err=%v, want silent refusal", p2, err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(d.Insitu), `"published": 9`) {
		t.Fatalf("dump in-situ section = %s, want the drop accounting embedded", d.Insitu)
	}

	// Raising the limit at runtime re-opens the budget (the restart path).
	m.Flight().SetLimit(2)
	if p3, err := m.Flight().Dump("manual", nil); err != nil || p3 == "" {
		t.Fatalf("dump after SetLimit(2): path=%q err=%v", p3, err)
	}
}

// TestHealthRearmHTTP pins the re-arm watermark through the HTTP surface:
// trip -> 503, Rearm -> 200 again, while the trip counter stays monotonic
// for Prometheus and the rearm is visible in both the verdict and /metrics.
func TestHealthRearmHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewRecorder("rank0").RecordSpan("s", 0, time.Millisecond, 0, 0)
	// Critical records auto-fire flight dumps; keep them out of the package
	// directory (an empty FlightDir means ".").
	m := New(reg, Options{FlightDir: t.TempDir()})
	get := serveMonitor(t, m)

	if code, _, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz healthy = %d", code)
	}
	m.Health().Record("test-guard", "rank0", SevCritical, "injected trip", 1)
	code, body, _ := get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after trip = %d, want 503", code)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil || v.Healthy || v.Trips != 1 || v.Cleared != 0 {
		t.Fatalf("tripped verdict = %s (err %v)", body, err)
	}

	m.Health().Rearm()
	code, body, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz after rearm = %d, want 200", code)
	}
	if err := json.Unmarshal(body, &v); err != nil || !v.Healthy || v.Trips != 1 || v.Cleared != 1 || v.Rearms != 1 {
		t.Fatalf("re-armed verdict = %s (err %v)", body, err)
	}

	_, mb, _ := get("/metrics")
	for _, want := range []string{
		"nektarg_health_healthy 1",
		"nektarg_health_trips_total 1", // monotonic: re-arm never rewinds it
		"nektarg_health_rearms_total 1",
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics after rearm missing %q:\n%s", want, mb)
		}
	}

	// A fresh trip after re-arm flips back to 503: the latch still works.
	m.Health().Record("test-guard", "rank0", SevCritical, "second trip", 1)
	if code, _, _ := get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz after second trip = %d, want 503", code)
	}
}
