package monitor

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Severity grades a health event. SevCritical events flip the run verdict to
// unhealthy and fire the trip hook (flight recorder).
type Severity uint8

// Event severities, ordered: an event of a higher severity always dominates.
const (
	SevInfo Severity = iota
	SevWarn
	SevCritical
)

// String returns the severity's display name.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevCritical:
		return "critical"
	default:
		return "?"
	}
}

// Event is one structured health record produced by a watchdog: the unit the
// /healthz verdict, the flight recorder and the slog stream all share.
type Event struct {
	Seq      int64     `json:"seq"`
	Time     time.Time `json:"time"`
	Watchdog string    `json:"watchdog"` // "nan-guard", "cg-watch", "cfl-watch", "particle-drift", ...
	Track    string    `json:"track"`    // rank/patch/region track name
	Severity Severity  `json:"severity"`
	Message  string    `json:"message"`
	Value    float64   `json:"value"` // the offending scalar (residual, ratio, CFL, ...)
}

// SeverityName mirrors Severity as a string for JSON readers.
func (e Event) SeverityName() string { return e.Severity.String() }

// DefaultEventCap bounds the health event ring; watchdogs latch on state
// transitions so the ring comfortably outlives any realistic run, but a
// misbehaving probe cannot grow memory without bound either way.
const DefaultEventCap = 512

// Health is the cluster-wide health state: a bounded ring of structured
// events plus per-(watchdog, severity) counters that never wrap. All methods
// are safe for concurrent use from solver goroutines and HTTP scrapes; a nil
// *Health (monitoring disabled) makes every method a cheap no-op.
type Health struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event // ring once len == cap
	head    int
	cap     int
	dropped int64
	seq     int64
	counts  map[string][3]int64 // watchdog -> events per severity
	trips   int64               // cumulative critical events
	cleared int64               // trips acknowledged by Rearm; healthy = trips == cleared
	rearms  int64               // number of Rearm calls
	onTrip  func(Event)         // flight-recorder hook; see Monitor
	onEvent func(Event)         // every-event mirror hook (fleet journal); see OnEvent
	log     *slog.Logger
}

// NewHealth creates an empty health state.
func NewHealth() *Health {
	return &Health{
		start:  time.Now(),
		cap:    DefaultEventCap,
		counts: map[string][3]int64{},
	}
}

// SetLogger mirrors every event into a structured log stream (Info/Warn/Error
// by severity) so log lines are joinable with the health timeline.
func (h *Health) SetLogger(l *slog.Logger) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.log = l
	h.mu.Unlock()
}

// OnTrip installs a hook invoked (outside the lock) for every critical event.
// The Monitor points it at the flight recorder.
func (h *Health) OnTrip(fn func(Event)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.onTrip = fn
	h.mu.Unlock()
}

// OnEvent installs a hook invoked (outside the lock) for every event, of any
// severity. Watchdogs emit only on severity transitions, so the volume is
// bounded; the fleet journal uses this to make every transition durable.
func (h *Health) OnEvent(fn func(Event)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.onEvent = fn
	h.mu.Unlock()
}

// Record appends one event, bumping the counters and firing the trip hook for
// critical severities. Safe on nil.
func (h *Health) Record(watchdog, track string, sev Severity, msg string, value float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.seq++
	e := Event{
		Seq: h.seq, Time: time.Now(), Watchdog: watchdog, Track: track,
		Severity: sev, Message: msg, Value: value,
	}
	if len(h.events) < h.cap {
		h.events = append(h.events, e)
	} else {
		h.events[h.head] = e
		h.head = (h.head + 1) % h.cap
		h.dropped++
	}
	c := h.counts[watchdog]
	c[sev]++
	h.counts[watchdog] = c
	if sev == SevCritical {
		h.trips++
	}
	hook := h.onTrip
	mirror := h.onEvent
	log := h.log
	h.mu.Unlock()

	if mirror != nil {
		mirror(e)
	}

	if log != nil {
		lvl := slog.LevelInfo
		switch sev {
		case SevWarn:
			lvl = slog.LevelWarn
		case SevCritical:
			lvl = slog.LevelError
		}
		log.Log(context.Background(), lvl, msg,
			"watchdog", watchdog, "track", track, "value", value, "seq", e.Seq)
	}
	if sev == SevCritical && hook != nil {
		hook(e)
	}
}

// Events returns the buffered events in chronological order.
func (h *Health) Events() []Event {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, 0, len(h.events))
	out = append(out, h.events[h.head:]...)
	out = append(out, h.events[:h.head]...)
	return out
}

// Healthy reports whether no watchdog has tripped since the last Rearm.
// Trips stay cumulative (Prometheus counters must never regress); Rearm moves
// the watermark the verdict is judged against.
func (h *Health) Healthy() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips == h.cleared
}

// Rearm acknowledges every critical event so far: /healthz returns to 200
// until the next trip. The recovery loop calls it after a checkpoint restore
// re-arms the solver watchdogs — a restored run is healthy again by
// construction, and leaving the verdict latched would page on ancient
// history. The acknowledgement is recorded as an info event so the timeline
// shows when (and how often) the run recovered.
func (h *Health) Rearm() {
	if h == nil {
		return
	}
	h.mu.Lock()
	acked := h.trips - h.cleared
	h.cleared = h.trips
	h.rearms++
	h.mu.Unlock()
	h.Record("health", "recovery", SevInfo,
		"health re-armed after recovery", float64(acked))
}

// Rearms returns how many times the health state has been re-armed.
func (h *Health) Rearms() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.rearms
}

// Trips returns the cumulative number of critical events.
func (h *Health) Trips() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.trips
}

// WatchdogCounts returns a copy of the per-watchdog severity counters.
func (h *Health) WatchdogCounts() map[string][3]int64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string][3]int64, len(h.counts))
	for k, v := range h.counts {
		out[k] = v
	}
	return out
}

// Verdict is the JSON body served by /healthz.
type Verdict struct {
	Status   string              `json:"status"` // "healthy" | "unhealthy"
	Healthy  bool                `json:"healthy"`
	UptimeS  float64             `json:"uptime_s"`
	Events   int64               `json:"events"`  // total events recorded
	Trips    int64               `json:"trips"`   // critical events (cumulative, never reset)
	Cleared  int64               `json:"cleared"` // trips acknowledged by recovery re-arms
	Rearms   int64               `json:"rearms"`  // recovery re-arm count
	Dropped  int64               `json:"dropped"` // events evicted from the ring
	Counts   map[string][3]int64 `json:"watchdogs,omitempty"`
	Critical []Event             `json:"critical,omitempty"` // most recent critical events (≤ 8)
}

// Verdict assembles the health verdict served by /healthz.
func (h *Health) Verdict() Verdict {
	if h == nil {
		return Verdict{Status: "healthy", Healthy: true}
	}
	h.mu.Lock()
	uptime := time.Since(h.start).Seconds()
	trips := h.trips
	cleared := h.cleared
	rearms := h.rearms
	dropped := h.dropped
	seq := h.seq
	counts := make(map[string][3]int64, len(h.counts))
	for k, v := range h.counts {
		counts[k] = v
	}
	// Collect the most recent critical events, newest last.
	var crit []Event
	ordered := make([]Event, 0, len(h.events))
	ordered = append(ordered, h.events[h.head:]...)
	ordered = append(ordered, h.events[:h.head]...)
	h.mu.Unlock()
	for _, e := range ordered {
		if e.Severity == SevCritical {
			crit = append(crit, e)
		}
	}
	if len(crit) > 8 {
		crit = crit[len(crit)-8:]
	}
	v := Verdict{
		Status: "healthy", Healthy: trips == cleared, UptimeS: uptime,
		Events: seq, Trips: trips, Cleared: cleared, Rearms: rearms,
		Dropped: dropped, Counts: counts, Critical: crit,
	}
	if !v.Healthy {
		v.Status = "unhealthy"
	}
	return v
}
