package monitor

import "sort"

// Stat is one externally supplied metric sample, the bridge by which
// subsystems outside the telemetry registry (the TCP transport's frame
// counters, for instance) surface numbers into /metrics and the fleet
// rollup without the monitor importing them. Name is the family suffix —
// WriteMetrics prepends the namespace — and samples of one family must share
// Help and Type.
type Stat struct {
	Name   string      `json:"name"`             // family suffix, e.g. "transport_frames_sent_total"
	Help   string      `json:"help"`             // HELP text for the family
	Type   string      `json:"type"`             // "counter" or "gauge"
	Labels [][2]string `json:"labels,omitempty"` // label key/value pairs, pre-sorted by the producer
	Value  float64     `json:"value"`
}

// AddStatSource registers an extra metric source polled at scrape time.
// Sources must be safe for concurrent calls.
func (m *Monitor) AddStatSource(fn func() []Stat) {
	if m == nil || fn == nil {
		return
	}
	m.mu.Lock()
	m.stats = append(m.stats, fn)
	m.mu.Unlock()
}

// Stats polls every registered stat source and returns the samples grouped
// by family (stable-sorted on Name, producer order preserved within one),
// ready for WriteMetrics or a fleet publish.
func (m *Monitor) Stats() []Stat {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	sources := append([]func() []Stat(nil), m.stats...)
	m.mu.Unlock()
	var out []Stat
	for _, fn := range sources {
		out = append(out, fn()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// writeStats renders extra stat samples; the caller has grouped families
// (Monitor.Stats sorts by Name). Each family's HELP/TYPE header is emitted
// once, before its first sample.
func (p *promWriter) writeStats(ns string, stats []Stat) {
	last := ""
	for _, s := range stats {
		if s.Name == "" {
			continue
		}
		name := ns + "_" + s.Name
		if s.Name != last {
			typ := s.Type
			if typ == "" {
				typ = "gauge"
			}
			help := s.Help
			if help == "" {
				help = "(no help)"
			}
			p.header(name, help, typ)
			last = s.Name
		}
		p.sample(name, s.Labels, s.Value)
	}
}
