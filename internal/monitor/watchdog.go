package monitor

import (
	"fmt"
	"math"

	"nektarg/internal/linalg"
)

// Watchdogs is one track's bundle of solver health probes. The solvers call
// its Guard*/Observe* methods from their step loops; each probe folds the
// observation into latched per-watchdog state and emits a structured Event to
// the shared Health only on severity *transitions* (ok→warn, warn→critical,
// →recovered), so a wedged solver produces a handful of events rather than
// one per step.
//
// Like telemetry.Recorder, a Watchdogs value is single-owner: exactly one
// goroutine (the solver's) may call its methods. A nil *Watchdogs is the
// disabled bundle — every method is a no-op costing one nil comparison and
// zero allocations, pinned by TestMonitorDisabledZeroCost in verify.sh.
type Watchdogs struct {
	h     *Health
	track string

	// Tunables (set before the run; defaults applied by Health.Watch).
	DivergeFactor float64 // cg-watch: residual > factor × initial ⇒ critical (default 10)
	DriftWarn     float64 // particle-drift: |n−ref|/ref beyond this ⇒ warn (default 0.2)
	DriftCritical float64 // particle-drift: beyond this ⇒ critical (default 0.5)
	DriftAlpha    float64 // particle-drift: EMA adaptation rate of the reference (default 0.05)
	DriftMinRef   float64 // particle-drift: reference below this ⇒ track only, no judgement (default 32)
	CFLWarnFrac   float64 // cfl-watch: cfl > frac × limit ⇒ warn (default 0.9)

	particleRef float64             // slowly adapting particle-count reference (EMA)
	state       map[string]Severity // latched severity per watchdog:stage key
}

// Watch creates a watchdog bundle reporting to this health state under the
// given track name. A nil Health returns a nil bundle, keeping every probe on
// the zero-cost disabled path.
func (h *Health) Watch(track string) *Watchdogs {
	if h == nil {
		return nil
	}
	return &Watchdogs{
		h: h, track: track,
		DivergeFactor: 10, DriftWarn: 0.2, DriftCritical: 0.5, DriftAlpha: 0.05,
		DriftMinRef: 32,
		CFLWarnFrac: 0.9,
		state:       map[string]Severity{},
	}
}

// Rearm clears the latched severities and the particle-count reference.
// The critical latch intentionally survives probe recovery — but when a
// checkpoint restore rolls the solver state back to before the corruption,
// the latched timeline no longer exists: without re-arming, a fault that
// recurs after resume would trip silently (no transition, no new Health
// event) and the recovery loop could not see it. The Health event history
// keeps the old trips as an audit trail; only the transition state resets.
// Call between steps only (Watchdogs is single-owner).
func (w *Watchdogs) Rearm() {
	if w == nil {
		return
	}
	clear(w.state)
	w.particleRef = 0
}

// Track returns the bundle's track name ("" when disabled).
func (w *Watchdogs) Track() string {
	if w == nil {
		return ""
	}
	return w.track
}

// transition latches the severity for key and reports whether it changed,
// recording the event when it did. Recovery (severity below the latch) emits
// one info event and re-arms the latch — except from critical, which stays
// latched: a run that corrupted state once is not healthy again just because
// the probe went quiet.
func (w *Watchdogs) transition(key, watchdog string, sev Severity, msg string, value float64) {
	prev := w.state[key]
	if sev == prev {
		return
	}
	if prev == SevCritical {
		return // critical latches for the life of the run
	}
	if sev < prev {
		w.state[key] = sev
		w.h.Record(watchdog, w.track, SevInfo, "recovered: "+msg, value)
		return
	}
	w.state[key] = sev
	w.h.Record(watchdog, w.track, sev, msg, value)
}

// GuardField scans a field for NaN/Inf. On the first non-finite entry it
// records a critical "nan-guard" event and returns an error the solver should
// surface instead of stepping on corrupted state. The scan is O(len) and only
// runs when the bundle is enabled.
func (w *Watchdogs) GuardField(stage, name string, data []float64) error {
	if w == nil {
		return nil
	}
	for i, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			msg := fmt.Sprintf("non-finite value %v at index %d of field %q in %s", v, i, name, stage)
			w.transition("nan:"+stage+":"+name, "nan-guard", SevCritical, msg, float64(i))
			return fmt.Errorf("monitor: %s: %s", w.track, msg)
		}
	}
	return nil
}

// GuardValue checks a single scalar (e.g. a particle coordinate) for NaN/Inf;
// idx identifies the offending element in the caller's structure.
func (w *Watchdogs) GuardValue(stage, name string, v float64, idx int) error {
	if w == nil {
		return nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		msg := fmt.Sprintf("non-finite value %v in %q at element %d in %s", v, name, idx, stage)
		w.transition("nan:"+stage+":"+name, "nan-guard", SevCritical, msg, float64(idx))
		return fmt.Errorf("monitor: %s: %s", w.track, msg)
	}
	return nil
}

// ObserveSolve feeds one CG outcome into the stagnation/divergence watchdog:
// a non-converged solve (iterations exhausted) is a warn-level stagnation; a
// final residual more than DivergeFactor × the initial residual is a
// critical divergence (the solve made things worse).
func (w *Watchdogs) ObserveSolve(stage string, st linalg.SolveStats, maxIter int) {
	if w == nil {
		return
	}
	if math.IsNaN(st.Residual) || math.IsInf(st.Residual, 0) {
		w.transition("cg:"+stage, "cg-watch", SevCritical,
			fmt.Sprintf("%s: non-finite residual after %d iterations", stage, st.Iterations), st.Residual)
		return
	}
	if len(st.History) > 0 {
		if init := st.History[0]; init > 0 && st.Residual > w.DivergeFactor*init {
			w.transition("cg:"+stage, "cg-watch", SevCritical,
				fmt.Sprintf("%s: diverged: residual %.3g > %g x initial %.3g", stage, st.Residual, w.DivergeFactor, init),
				st.Residual)
			return
		}
	}
	if !st.Converged {
		w.transition("cg:"+stage, "cg-watch", SevWarn,
			fmt.Sprintf("%s: stagnated at residual %.3g after %d/%d iterations", stage, st.Residual, st.Iterations, maxIter),
			st.Residual)
		return
	}
	w.transition("cg:"+stage, "cg-watch", SevInfo,
		fmt.Sprintf("%s: converged (residual %.3g)", stage, st.Residual), st.Residual)
}

// ObserveCFL feeds a CFL number against its stability limit: above the limit
// is critical, above CFLWarnFrac × limit is a warn.
func (w *Watchdogs) ObserveCFL(stage string, cfl, limit float64) {
	if w == nil {
		return
	}
	switch {
	case math.IsNaN(cfl) || cfl > limit:
		w.transition("cfl:"+stage, "cfl-watch", SevCritical,
			fmt.Sprintf("%s: CFL %.3f exceeds stability limit %.3f", stage, cfl, limit), cfl)
	case cfl > w.CFLWarnFrac*limit:
		w.transition("cfl:"+stage, "cfl-watch", SevWarn,
			fmt.Sprintf("%s: CFL %.3f within %.0f%% of limit %.3f", stage, cfl, 100*(1-w.CFLWarnFrac), limit), cfl)
	default:
		w.transition("cfl:"+stage, "cfl-watch", SevInfo,
			fmt.Sprintf("%s: CFL %.3f", stage, cfl), cfl)
	}
}

// ObserveParticles feeds the current particle count of an open-boundary DPD
// region. The first observation seeds a slowly adapting reference (an
// exponential moving average with rate DriftAlpha); per-step drift beyond
// DriftWarn/DriftCritical relative to that reference raises the corresponding
// severity. The EMA matters: an open region legitimately equilibrates toward
// the flux-BC target density over hundreds of steps, which a fixed baseline
// would misreport as a leak, while a genuine flux-BC leak (insertions ≠
// deletions, a step change in count) outruns the reference and still trips.
func (w *Watchdogs) ObserveParticles(n int) {
	if w == nil {
		return
	}
	if w.particleRef == 0 {
		w.particleRef = float64(n)
		return
	}
	// Below DriftMinRef the relative drift of an open region is statistical
	// noise — a flux-fed box filling from 1 to 2 particles is a 100% "jump"
	// that means nothing. Track the reference but pass no judgement until
	// the population carries signal.
	if w.particleRef < w.DriftMinRef {
		w.particleRef += w.DriftAlpha * (float64(n) - w.particleRef)
		return
	}
	drift := math.Abs(float64(n)-w.particleRef) / w.particleRef
	switch {
	case drift > w.DriftCritical:
		w.transition("drift", "particle-drift", SevCritical,
			fmt.Sprintf("particle count %d jumped %.0f%% from reference %.0f", n, 100*drift, w.particleRef), drift)
	case drift > w.DriftWarn:
		w.transition("drift", "particle-drift", SevWarn,
			fmt.Sprintf("particle count %d jumped %.0f%% from reference %.0f", n, 100*drift, w.particleRef), drift)
	default:
		w.transition("drift", "particle-drift", SevInfo,
			fmt.Sprintf("particle count %d near reference %.0f", n, w.particleRef), drift)
	}
	w.particleRef += w.DriftAlpha * (float64(n) - w.particleRef)
}

// Event records an arbitrary structured health event on this track — the
// escape hatch for solver-specific probes the bundle has no helper for.
func (w *Watchdogs) Event(sev Severity, watchdog, msg string, value float64) {
	if w == nil {
		return
	}
	w.h.Record(watchdog, w.track, sev, msg, value)
}
