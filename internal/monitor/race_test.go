//go:build race

package monitor

// raceEnabled reports that the race detector instruments this build; the
// zero-cost timing guard skips its ns/op assertion then (instrumented calls
// cost ~100 ns regardless of what the code does) while the allocation
// assertion still runs.
const raceEnabled = true
