package monitor

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"nektarg/internal/telemetry"
)

// Prometheus text exposition (version 0.0.4) rendered straight from telemetry
// snapshots — no client library, no global registries: the monitor owns the
// snapshot → exposition translation so the solvers stay dependency-free.
//
// Metric families (namespace default "nektarg"):
//
//	<ns>_up                                         1 while serving
//	<ns>_tracks                                     number of telemetry tracks
//	<ns>_stage_seconds_total{track,stage}           cumulative stage seconds, per rank
//	<ns>_stage_count_total{track,stage}             stage occurrences, per rank
//	<ns>_stage_hops_total{track,stage}              hop-clock advance, per rank
//	<ns>_cluster_stage_seconds{stage,stat}          min/mean/max per-track totals
//	<ns>_stage_imbalance_ratio{stage}               max/mean per-track total
//	<ns>_stage_straggler_share{stage}               straggler's fraction of stage time
//	<ns>_stage_critical_path_share{stage}           stage's share of total hop advance
//	<ns>_traffic_messages_total{level,op}           cluster messages by MCI level × op
//	<ns>_traffic_bytes_total{level,op}              cluster payload bytes by level × op
//	<ns>_solver_gauge{track,gauge,stat}             last/mean/min/max of solver gauges
//	<ns>_telemetry_dropped_events_total{track}      span records evicted from each track's ring
//	<ns>_insitu_published_total                     snapshot pieces offered by publishers
//	<ns>_insitu_delivered_total                     pieces consumed by the observer
//	<ns>_insitu_dropped_total                       pieces shed by the transport
//	<ns>_insitu_bytes_total                         payload bytes published
//	<ns>_insitu_frames_total                        causally consistent frames assembled
//	<ns>_insitu_staleness_steps                     steps the latest frame trails the newest piece
//	<ns>_health_healthy                             1 healthy, 0 tripped (since last re-arm)
//	<ns>_health_events_total{watchdog,severity}     watchdog event counters
//	<ns>_health_trips_total                         critical events (cumulative)
//	<ns>_health_rearms_total                        recovery re-arms
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// header emits the HELP/TYPE preamble for one metric family.
func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line with sorted, escaped labels.
func (p *promWriter) sample(name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(v))
		return
	}
	parts := make([]string, len(labels))
	for i, kv := range labels {
		parts[i] = fmt.Sprintf("%s=%q", kv[0], escapeLabel(kv[1]))
	}
	p.printf("%s{%s} %s\n", name, strings.Join(parts, ","), formatValue(v))
}

// formatValue renders a float the Prometheus way (shortest round-trip form).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// WriteMetrics renders snapshots, imbalance diagnoses, extra stat samples
// (transport counters and other out-of-registry sources — pass nil for none)
// and health counters as Prometheus text exposition. Output is deterministic
// for a given input (tracks, stages, labels all sorted; extra families in the
// grouped order Monitor.Stats produces), which the golden test pins.
func WriteMetrics(w io.Writer, namespace string, snaps []*telemetry.Snapshot, imb []StageImbalance, extra []Stat, h *Health) error {
	if namespace == "" {
		namespace = "nektarg"
	}
	p := &promWriter{w: w}
	ns := namespace

	p.header(ns+"_up", "Whether the monitor is serving.", "gauge")
	p.sample(ns+"_up", nil, 1)
	p.header(ns+"_tracks", "Number of telemetry tracks (ranks/patches/regions).", "gauge")
	p.sample(ns+"_tracks", nil, float64(len(snaps)))

	ordered := append([]*telemetry.Snapshot(nil), snaps...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Track < ordered[j].Track })

	// Per-rank stage aggregates.
	p.header(ns+"_stage_seconds_total", "Cumulative seconds spent in each stage, per track.", "counter")
	eachStage(ordered, func(track, stage string, st telemetry.StageStats) {
		p.sample(ns+"_stage_seconds_total", [][2]string{{"track", track}, {"stage", stage}}, st.Total)
	})
	p.header(ns+"_stage_count_total", "Stage occurrences, per track.", "counter")
	eachStage(ordered, func(track, stage string, st telemetry.StageStats) {
		p.sample(ns+"_stage_count_total", [][2]string{{"track", track}, {"stage", stage}}, float64(st.Count))
	})
	p.header(ns+"_stage_hops_total", "Hop-clock advance attributed to each stage, per track.", "counter")
	eachStage(ordered, func(track, stage string, st telemetry.StageStats) {
		p.sample(ns+"_stage_hops_total", [][2]string{{"track", track}, {"stage", stage}}, float64(st.Hops))
	})

	// Cluster-aggregated stage statistics + imbalance.
	p.header(ns+"_cluster_stage_seconds", "Per-track stage totals aggregated across the cluster.", "gauge")
	for _, r := range imb {
		for _, st := range [...]struct {
			stat string
			v    float64
		}{{"min", r.MinS}, {"mean", r.MeanS}, {"max", r.MaxS}} {
			p.sample(ns+"_cluster_stage_seconds", [][2]string{{"stage", r.Stage}, {"stat", st.stat}}, st.v)
		}
	}
	p.header(ns+"_stage_imbalance_ratio", "Max/mean per-track stage total (1 = balanced).", "gauge")
	for _, r := range imb {
		p.sample(ns+"_stage_imbalance_ratio", [][2]string{{"stage", r.Stage}}, r.Ratio)
	}
	p.header(ns+"_stage_straggler_share", "Straggler track's fraction of the stage's summed time.", "gauge")
	for _, r := range imb {
		p.sample(ns+"_stage_straggler_share", [][2]string{{"stage", r.Stage}, {"straggler", r.Straggler}}, r.StragglerShare)
	}
	p.header(ns+"_stage_critical_path_share", "Stage's share of the total hop-clock advance.", "gauge")
	for _, r := range imb {
		p.sample(ns+"_stage_critical_path_share", [][2]string{{"stage", r.Stage}}, r.CriticalShare)
	}

	// Cluster traffic matrix (bytes counted once at the sender, so sums are
	// exact across ranks).
	var traffic telemetry.TrafficMatrix
	for _, s := range ordered {
		for l := telemetry.Level(0); l < telemetry.NumLevels; l++ {
			for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
				traffic[l][op].Msgs += s.Traffic[l][op].Msgs
				traffic[l][op].Bytes += s.Traffic[l][op].Bytes
			}
		}
	}
	p.header(ns+"_traffic_messages_total", "Messages sent, by MCI communicator level and operation.", "counter")
	eachTraffic(&traffic, func(l telemetry.Level, op telemetry.Op, t telemetry.Traffic) {
		p.sample(ns+"_traffic_messages_total", [][2]string{{"level", l.String()}, {"op", op.String()}}, float64(t.Msgs))
	})
	p.header(ns+"_traffic_bytes_total", "Payload bytes sent, by MCI communicator level and operation.", "counter")
	eachTraffic(&traffic, func(l telemetry.Level, op telemetry.Op, t telemetry.Traffic) {
		p.sample(ns+"_traffic_bytes_total", [][2]string{{"level", l.String()}, {"op", op.String()}}, float64(t.Bytes))
	})

	// Solver gauges, per track.
	p.header(ns+"_solver_gauge", "Solver gauge series (CG iterations, particle counts, ...).", "gauge")
	for _, s := range ordered {
		names := make([]string, 0, len(s.Gauges))
		for n := range s.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			g := s.Gauges[n]
			for _, st := range [...]struct {
				stat string
				v    float64
			}{{"last", g.Last}, {"mean", g.Mean()}, {"min", g.Min}, {"max", g.Max}} {
				p.sample(ns+"_solver_gauge", [][2]string{{"track", s.Track}, {"gauge", n}, {"stat", st.stat}}, st.v)
			}
		}
	}

	// Telemetry ring eviction, per track. Always emitted — including 0: a
	// flat-zero series is how an operator proves no span records were lost.
	p.header(ns+"_telemetry_dropped_events_total", "Span records evicted from each track's telemetry ring.", "counter")
	for _, s := range ordered {
		p.sample(ns+"_telemetry_dropped_events_total", [][2]string{{"track", s.Track}}, float64(s.DroppedEvents))
	}

	// In-situ pipeline accounting, derived from the observer track's
	// insitu.* gauges (the observer mirrors its counters there so the
	// exposition needs no extra plumbing). Families appear once any track
	// carries in-situ gauges.
	if hasInsituGauges(ordered) {
		for _, fam := range [...]struct {
			suffix, help, typ, gauge string
			max                      bool // max across tracks (gauges); else sum (counters)
		}{
			{"_insitu_published_total", "Snapshot pieces offered by in-situ publishers.", "counter", "insitu.published", false},
			{"_insitu_delivered_total", "Snapshot pieces consumed by the observer.", "counter", "insitu.delivered", false},
			{"_insitu_dropped_total", "Snapshot pieces shed by the in-situ transport.", "counter", "insitu.dropped", false},
			{"_insitu_bytes_total", "Payload bytes published into the in-situ pipeline.", "counter", "insitu.bytes", false},
			{"_insitu_frames_total", "Causally consistent frames assembled by the observer.", "counter", "insitu.frames", false},
			{"_insitu_staleness_steps", "Steps the latest assembled frame trails the newest published piece.", "gauge", "insitu.staleness", true},
		} {
			var v float64
			for _, s := range ordered {
				g, ok := s.Gauges[fam.gauge]
				if !ok {
					continue
				}
				if fam.max {
					if g.Last > v {
						v = g.Last
					}
				} else {
					v += g.Last
				}
			}
			p.header(ns+fam.suffix, fam.help, fam.typ)
			p.sample(ns+fam.suffix, nil, v)
		}
	}

	// Extra stat samples (transport counters and other sources registered via
	// Monitor.AddStatSource).
	p.writeStats(ns, extra)

	// Health.
	p.header(ns+"_health_healthy", "1 while no watchdog has tripped since the last re-arm, 0 after a critical event.", "gauge")
	hv := 1.0
	if !h.Healthy() {
		hv = 0
	}
	p.sample(ns+"_health_healthy", nil, hv)
	p.header(ns+"_health_trips_total", "Cumulative critical watchdog events.", "counter")
	p.sample(ns+"_health_trips_total", nil, float64(h.Trips()))
	p.header(ns+"_health_rearms_total", "Times the health verdict was re-armed after recovery.", "counter")
	p.sample(ns+"_health_rearms_total", nil, float64(h.Rearms()))
	p.header(ns+"_health_events_total", "Watchdog events by watchdog and severity.", "counter")
	counts := h.WatchdogCounts()
	wnames := make([]string, 0, len(counts))
	for n := range counts {
		wnames = append(wnames, n)
	}
	sort.Strings(wnames)
	for _, n := range wnames {
		c := counts[n]
		for sev := SevInfo; sev <= SevCritical; sev++ {
			if c[sev] == 0 {
				continue
			}
			p.sample(ns+"_health_events_total", [][2]string{{"watchdog", n}, {"severity", sev.String()}}, float64(c[sev]))
		}
	}
	return p.err
}

// hasInsituGauges reports whether any track carries in-situ pipeline gauges.
func hasInsituGauges(snaps []*telemetry.Snapshot) bool {
	for _, s := range snaps {
		for name := range s.Gauges {
			if strings.HasPrefix(name, "insitu.") {
				return true
			}
		}
	}
	return false
}

// eachStage iterates (track, stage) pairs in deterministic order.
func eachStage(snaps []*telemetry.Snapshot, fn func(track, stage string, st telemetry.StageStats)) {
	for _, s := range snaps {
		for _, name := range s.StageNames() {
			fn(s.Track, name, s.Stages[name])
		}
	}
}

// eachTraffic iterates the nonzero traffic cells in level-major order.
func eachTraffic(m *telemetry.TrafficMatrix, fn func(telemetry.Level, telemetry.Op, telemetry.Traffic)) {
	for l := telemetry.Level(0); l < telemetry.NumLevels; l++ {
		for op := telemetry.Op(0); op < telemetry.NumOps; op++ {
			if t := m[l][op]; t.Msgs != 0 || t.Bytes != 0 {
				fn(l, op, t)
			}
		}
	}
}
