// Package monitor is the live half of the observability plane: where
// internal/telemetry records what a run did (post-mortem spans, counters,
// traces), monitor reports what a run is doing — scrapeable Prometheus
// metrics, a health verdict, solver watchdogs, a load-imbalance analyzer and
// a crash flight recorder.
//
// The paper's 131,072-core runs depended on exactly this kind of in-flight
// attribution: which patch is the straggler, is the CG solve diverging, is
// the DPD region leaking particles — answered while the metasolver runs, not
// from a post-mortem trace. The layering is strict:
//
//	recorder  (telemetry.Recorder — single-owner, lock-light, per rank)
//	   ↓ Snapshot()            — deep copy, safe to take mid-step
//	snapshot  (telemetry.Snapshot — immutable aggregate)
//	   ↓ exporter              — Prometheus text / imbalance table / flight JSON
//	HTTP      (/metrics, /healthz, /imbalance, /flight, /debug/pprof)
//
// Watchdog contract: solvers own a *Watchdogs bundle (nil when monitoring is
// off — every probe then costs one nil comparison, the same zero-cost bar as
// telemetry, pinned by TestMonitorDisabledZeroCost). Probes latch per
// watchdog and emit structured Events only on severity transitions; the
// first critical event flips /healthz to 503 for the rest of the run and
// fires the flight recorder.
package monitor

import (
	"io"
	"sync"
	"time"

	"nektarg/internal/telemetry"
)

// Options configures a Monitor.
type Options struct {
	// Namespace prefixes every Prometheus metric family (default "nektarg").
	Namespace string
	// FlightDir is where flight-*.json dumps land (default ".").
	FlightDir string
	// FlightSpans caps the trailing spans per track in a dump
	// (default DefaultFlightSpans).
	FlightSpans int
	// FlightLimit caps how many dumps one run may write
	// (default DefaultFlightLimit; cmd/nektarg's -flight-max).
	FlightLimit int
	// FlightAnomalyLimit caps performance-anomaly-triggered dumps, a budget
	// separate from FlightLimit so an anomaly cascade cannot starve the
	// watchdog/panic dumps — or vice versa (default
	// DefaultAnomalyFlightLimit; cmd/nektarg's -flight-anomaly-max).
	FlightAnomalyLimit int
}

// SnapshotSource is the in-situ observation surface the monitor serves: the
// insitu package's Observer satisfies it structurally, so monitor never
// imports insitu (which imports core, which imports monitor — the interface
// breaks the cycle at the thinnest point).
type SnapshotSource interface {
	// SnapshotMeta returns the latest frame's metadata and the pipeline's
	// drop/staleness accounting as a JSON document (/snapshot).
	SnapshotMeta() ([]byte, error)
	// SnapshotVTK streams the latest assembled frame as concatenated legacy
	// VTK documents (/snapshot/vtk). An error means no frame exists yet.
	SnapshotVTK(w io.Writer) error
}

// AuditSource is the physics audit surface the monitor serves on GET
// /audit: the audit package's Ledger satisfies it structurally, so monitor
// never imports audit (audit imports monitor for the Stat bridge and the
// watchdog track — the interface breaks the cycle, exactly like
// SnapshotSource does for insitu).
type AuditSource interface {
	// WriteJSON streams the full conservation-ledger status — budgets,
	// latched severities, EMA statistics, byte-leg totals — as one JSON
	// document.
	WriteJSON(w io.Writer) error
}

// HistorySource is the performance-history surface the monitor serves on
// GET /history and GET /anomalies: the history package's Plane satisfies it
// structurally (history imports monitor for the Stat bridge, so the
// interface breaks the cycle the same way AuditSource does for audit).
type HistorySource interface {
	// HistoryJSON renders the time-series document. prefix filters series
	// by name prefix, tier selects the downsample level (negative =
	// auto-fit), maxPoints truncates each series to its newest N entries
	// (0 = unlimited).
	HistoryJSON(prefix string, tier, maxPoints int) ([]byte, error)
	// AnomaliesJSON renders the detected-anomaly log with per-kind totals.
	AnomaliesJSON() ([]byte, error)
}

// Monitor bundles the health state, flight recorder and snapshot source
// behind one HTTP surface. Create with New; all methods are safe for
// concurrent use.
type Monitor struct {
	reg    *telemetry.Registry
	health *Health
	flight *FlightRecorder
	ns     string
	start  time.Time

	mu    sync.Mutex
	extra []func() []*telemetry.Recorder // additional recorder sources
	stats []func() []Stat                // extra metric sources (transport counters, ...)
	snap  SnapshotSource                 // in-situ observation surface; nil = 404
	audit AuditSource                    // physics audit surface; nil = 404
	hist  HistorySource                  // performance history surface; nil = 404
}

// New builds a monitor over a telemetry registry. The registry supplies the
// per-rank recorders whose snapshots feed /metrics, the imbalance analyzer
// and the flight recorder; reg may be nil if sources are added later via
// AddSource. The first critical health event automatically fires the flight
// recorder.
func New(reg *telemetry.Registry, opts Options) *Monitor {
	m := &Monitor{reg: reg, health: NewHealth(), ns: opts.Namespace, start: time.Now()}
	m.flight = NewFlightRecorder(opts.FlightDir, m.recorders, m.health)
	if opts.FlightSpans > 0 {
		m.flight.SetMaxSpans(opts.FlightSpans)
	}
	if opts.FlightLimit > 0 {
		m.flight.SetLimit(opts.FlightLimit)
	}
	if opts.FlightAnomalyLimit > 0 {
		m.flight.SetAnomalyLimit(opts.FlightAnomalyLimit)
	}
	m.health.OnTrip(func(e Event) {
		ev := e
		m.flight.Dump("watchdog:"+e.Watchdog, &ev) //nolint:errcheck // best-effort black box
	})
	// Go runtime gauges ride into /metrics and the fleet publish alongside
	// any producer-registered stats (see runtime.go).
	m.AddStatSource(func() []Stat { return runtimeStats(m.start) })
	return m
}

// Health returns the monitor's health state (watchdog registry).
func (m *Monitor) Health() *Health {
	if m == nil {
		return nil
	}
	return m.health
}

// Flight returns the monitor's flight recorder.
func (m *Monitor) Flight() *FlightRecorder {
	if m == nil {
		return nil
	}
	return m.flight
}

// SetSnapshotSource wires the in-situ observation surface: /snapshot and
// /snapshot/vtk start serving, and flight dumps gain the insitu section.
// nil detaches it again.
func (m *Monitor) SetSnapshotSource(src SnapshotSource) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.snap = src
	m.mu.Unlock()
	if src == nil {
		m.flight.SetInsituSource(nil)
	} else {
		m.flight.SetInsituSource(src.SnapshotMeta)
	}
}

// snapshotSource returns the wired in-situ surface, if any.
func (m *Monitor) snapshotSource() SnapshotSource {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap
}

// SetAuditSource wires the physics audit surface: GET /audit starts
// serving the conservation-ledger document. nil detaches it again.
func (m *Monitor) SetAuditSource(src AuditSource) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.audit = src
	m.mu.Unlock()
}

// auditSource returns the wired audit surface, if any.
func (m *Monitor) auditSource() AuditSource {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.audit
}

// SetHistorySource wires the performance-history surface: GET /history and
// GET /anomalies start serving. nil detaches it again.
func (m *Monitor) SetHistorySource(src HistorySource) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.hist = src
	m.mu.Unlock()
}

// HistorySource returns the wired performance-history surface, if any (the
// fleet publisher embeds its compact document into each status publish).
func (m *Monitor) HistorySource() HistorySource {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hist
}

// AddSource registers an extra recorder source (e.g. per-rank recorders that
// live outside the registry). fn is called at scrape time.
func (m *Monitor) AddSource(fn func() []*telemetry.Recorder) {
	if m == nil || fn == nil {
		return
	}
	m.mu.Lock()
	m.extra = append(m.extra, fn)
	m.mu.Unlock()
}

// recorders collects every known recorder (registry + extra sources).
func (m *Monitor) recorders() []*telemetry.Recorder {
	var recs []*telemetry.Recorder
	if m.reg != nil {
		recs = m.reg.Recorders()
	}
	m.mu.Lock()
	extra := append([]func() []*telemetry.Recorder(nil), m.extra...)
	m.mu.Unlock()
	for _, fn := range extra {
		recs = append(recs, fn()...)
	}
	return recs
}

// Snapshots captures every track's aggregates at this instant. Safe to call
// while the solvers are mid-step: Recorder.Snapshot serializes against the
// owning goroutine's writes.
func (m *Monitor) Snapshots() []*telemetry.Snapshot {
	if m == nil {
		return nil
	}
	var snaps []*telemetry.Snapshot
	for _, r := range m.recorders() {
		if s := r.Snapshot(); s != nil {
			snaps = append(snaps, s)
		}
	}
	return snaps
}

// Imbalance runs the load-imbalance analyzer over the current snapshots.
func (m *Monitor) Imbalance() []StageImbalance {
	return AnalyzeImbalance(m.Snapshots())
}
