package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// BuildInfo is the provenance record served at /buildinfo and printed by the
// -version flags: enough to answer "which binary produced this run?" when a
// flight dump or metrics scrape comes back from a cluster.
type BuildInfo struct {
	Path      string `json:"path"`       // main module import path
	Version   string `json:"version"`    // module version ("(devel)" for local builds)
	GoVersion string `json:"go_version"` // toolchain that built the binary
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	Revision  string `json:"revision,omitempty"`  // vcs.revision, when stamped
	BuildTime string `json:"buildtime,omitempty"` // vcs.time, when stamped
	Modified  bool   `json:"modified,omitempty"`  // vcs.modified: dirty tree
}

// ReadBuildInfo collects the running binary's provenance from the embedded
// module info. It never fails: binaries built without module info (go test
// binaries, some vendored builds) report what the runtime knows.
func ReadBuildInfo() BuildInfo {
	b := BuildInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Version:   "(unknown)",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = bi.Main.Path
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.time":
			b.BuildTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line -version output.
func (b BuildInfo) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unstamped"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s, %s/%s, rev %s)", b.Path, b.Version, b.GoVersion, b.OS, b.Arch, rev)
}

// WriteJSON writes the indented JSON document served at /buildinfo.
func (b BuildInfo) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
