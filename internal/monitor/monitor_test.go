package monitor

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nektarg/internal/linalg"
	"nektarg/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticState builds a fixed two-rank telemetry state plus a health
// timeline with one warn event — fully deterministic, so /metrics output can
// be pinned byte-for-byte by the golden test.
func syntheticState() ([]*telemetry.Snapshot, *Health) {
	reg := telemetry.NewRegistry()
	r0 := reg.NewRecorder("rank0")
	r1 := reg.NewRecorder("rank1")

	// rank0: two fast steps + a short exchange; rank1: one slow step + a
	// long exchange (the deliberate straggler). Durations are dyadic
	// fractions of a second so every derived statistic is exact in float64
	// and the golden exposition stays platform-independent.
	r0.RecordSpan("ns.step", 0, 250*time.Millisecond, 0, 4)
	r0.RecordSpan("ns.step", 300*time.Millisecond, 250*time.Millisecond, 4, 8)
	r0.RecordSpan("exchange", 250*time.Millisecond, 125*time.Millisecond, 8, 10)
	r1.RecordSpan("ns.step", 0, 750*time.Millisecond, 0, 4)
	r1.RecordSpan("exchange", 750*time.Millisecond, 375*time.Millisecond, 4, 12)

	r0.CountMessage(telemetry.LevelL4, telemetry.OpCoupling, 4096)
	r0.CountMessage(telemetry.LevelWorld, telemetry.OpAllreduce, 8)
	r1.CountMessage(telemetry.LevelL4, telemetry.OpCoupling, 4096)

	r0.Gauge("cg_iterations", 12)
	r0.Gauge("cg_iterations", 18)
	r1.Gauge("particles", 4000)

	// rank1 doubles as the observer track: insitu.* gauges pin the
	// <ns>_insitu_* family rendering.
	r1.Gauge("insitu.published", 48)
	r1.Gauge("insitu.delivered", 40)
	r1.Gauge("insitu.dropped", 8)
	r1.Gauge("insitu.bytes", 65536)
	r1.Gauge("insitu.frames", 10)
	r1.Gauge("insitu.staleness", 2)

	h := NewHealth()
	h.Record("cg-watch", "rank0", SevInfo, "ns.pressure: converged", 1e-9)
	h.Record("cfl-watch", "rank1", SevWarn, "1d.step: CFL within 10% of limit", 0.95)

	var snaps []*telemetry.Snapshot
	for _, r := range reg.Recorders() {
		snaps = append(snaps, r.Snapshot())
	}
	return snaps, h
}

// TestGoldenMetrics pins the Prometheus exposition for a known synthetic
// state byte-for-byte. Regenerate with `go test ./internal/monitor -run
// Golden -update` after an intentional format change.
func TestGoldenMetrics(t *testing.T) {
	snaps, h := syntheticState()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, "nektarg", snaps, AnalyzeImbalance(snaps), nil, h); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestMetricsParse sanity-checks the exposition shape independent of the
// golden bytes: every non-comment line is `name{labels} value` with the
// configured namespace, and the cluster families cover both tracks.
func TestMetricsParse(t *testing.T) {
	snaps, h := syntheticState()
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, "test", snaps, AnalyzeImbalance(snaps), nil, h); err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, "test_") {
			t.Fatalf("sample outside namespace: %q", line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		samples++
	}
	if samples < 20 {
		t.Fatalf("suspiciously few samples: %d", samples)
	}
	for _, want := range []string{
		`test_stage_seconds_total{track="rank0",stage="ns.step"} 0.5`,
		`test_stage_seconds_total{track="rank1",stage="ns.step"} 0.75`,
		`test_stage_imbalance_ratio{stage="ns.step"} 1.2`,
		`test_stage_straggler_share{stage="exchange",straggler="rank1"} 0.75`,
		`test_traffic_bytes_total{level="L4",op="coupling"} 8192`,
		`test_solver_gauge{track="rank0",gauge="cg_iterations",stat="mean"} 15`,
		`test_health_healthy 1`,
		`test_health_events_total{watchdog="cfl-watch",severity="warn"} 1`,
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Fatalf("exposition missing %q\n%s", want, buf.String())
		}
	}
}

// TestImbalanceAnalyzer pins the analyzer arithmetic on the synthetic state:
// rank1 is the ns.step straggler at ratio max/mean = 0.3/0.25.
func TestImbalanceAnalyzer(t *testing.T) {
	snaps, _ := syntheticState()
	imb := AnalyzeImbalance(snaps)
	if len(imb) != 2 {
		t.Fatalf("want 2 stages, got %d", len(imb))
	}
	// Sorted by stage name: exchange first, ns.step second.
	ex, ns := imb[0], imb[1]
	if ex.Stage != "exchange" || ns.Stage != "ns.step" {
		t.Fatalf("unexpected stage order: %q, %q", ex.Stage, ns.Stage)
	}
	if ns.Straggler != "rank1" || ex.Straggler != "rank1" {
		t.Fatalf("straggler attribution wrong: ns=%q ex=%q", ns.Straggler, ex.Straggler)
	}
	if want := 0.75 / 0.625; math.Abs(ns.Ratio-want) > 1e-12 {
		t.Fatalf("ns.step imbalance ratio = %g, want %g", ns.Ratio, want)
	}
	if want := 0.375 / 0.5; math.Abs(ex.StragglerShare-want) > 1e-12 {
		t.Fatalf("exchange straggler share = %g, want %g", ex.StragglerShare, want)
	}
	if ns.Tracks != 2 || ns.Count != 3 {
		t.Fatalf("ns.step tracks=%d count=%d, want 2/3", ns.Tracks, ns.Count)
	}
	// Hop accounting: ns.step advanced 4+4+4=12 hops, exchange 2+8=10.
	if ns.Hops != 12 || ex.Hops != 10 {
		t.Fatalf("hops ns=%d ex=%d, want 12/10", ns.Hops, ex.Hops)
	}
	table := FormatImbalanceTable(imb)
	if !strings.Contains(table, "ns.step") || !strings.Contains(table, "rank1") {
		t.Fatalf("imbalance table missing rows:\n%s", table)
	}
	// Worst ratio first in the human table: exchange (1.5x) before ns.step
	// (1.2x).
	if strings.Index(table, "exchange") > strings.Index(table, "ns.step") {
		t.Fatalf("table not sorted worst-first:\n%s", table)
	}
}

// TestWatchdogLatching pins the event-on-transition contract: repeated
// identical observations emit one event; recovery emits one info; critical
// latches for the life of the run.
func TestWatchdogLatching(t *testing.T) {
	h := NewHealth()
	w := h.Watch("rank0")

	ok := linalg.SolveStats{Converged: true, Residual: 1e-10, History: []float64{1, 1e-10}}
	stag := linalg.SolveStats{Converged: false, Residual: 1e-3, Iterations: 100, History: []float64{1, 1e-3}}
	div := linalg.SolveStats{Converged: false, Residual: 50, Iterations: 100, History: []float64{1, 50}}

	// Healthy observations are silent: the implicit latch state is info, so
	// a converged solve emits nothing — steady-state runs generate zero
	// health events.
	for i := 0; i < 5; i++ {
		w.ObserveSolve("ns.pressure", ok, 100)
	}
	if got := len(h.Events()); got != 0 {
		t.Fatalf("5 healthy observations produced %d events, want 0", got)
	}
	w.ObserveSolve("ns.pressure", stag, 100) // info -> warn: one event
	w.ObserveSolve("ns.pressure", stag, 100) // latched: silent
	w.ObserveSolve("ns.pressure", ok, 100)   // warn -> recovered info: one event
	if got := len(h.Events()); got != 2 {
		t.Fatalf("warn+recover produced %d events, want 2", got)
	}
	if !h.Healthy() {
		t.Fatal("warn-level events must not trip the verdict")
	}
	w.ObserveSolve("ns.pressure", div, 100) // -> critical
	if h.Healthy() || h.Trips() != 1 {
		t.Fatalf("divergence should trip: healthy=%v trips=%d", h.Healthy(), h.Trips())
	}
	w.ObserveSolve("ns.pressure", ok, 100) // critical latches: no recovery event
	if got := h.Trips(); got != 1 {
		t.Fatalf("trips = %d after latched critical, want 1", got)
	}
	if got := len(h.Events()); got != 3 {
		t.Fatalf("critical latch leaked events: %d, want 3", got)
	}

	// CFL and particle-drift probes grade correctly.
	w.ObserveCFL("1d.step", 0.5, 1)  // info: silent
	w.ObserveCFL("1d.step", 0.95, 1) // warn
	w.ObserveCFL("1d.step", 1.5, 1)  // critical
	counts := h.WatchdogCounts()
	if c := counts["cfl-watch"]; c[SevWarn] != 1 || c[SevCritical] != 1 {
		t.Fatalf("cfl-watch counts = %v", c)
	}
	w.ObserveParticles(1000) // baseline
	w.ObserveParticles(1100) // 10% drift: info
	w.ObserveParticles(1300) // 30% drift: warn
	w.ObserveParticles(1600) // 60% drift: critical
	if c := h.WatchdogCounts()["particle-drift"]; c[SevWarn] != 1 || c[SevCritical] != 1 {
		t.Fatalf("particle-drift counts = %v", c)
	}
}

// TestGuardField pins the NaN guard: clean fields pass free of events, the
// first non-finite entry produces a critical event and an error naming the
// field and index.
func TestGuardField(t *testing.T) {
	h := NewHealth()
	w := h.Watch("patch:A")
	clean := []float64{1, 2, 3}
	if err := w.GuardField("ns.step", "u", clean); err != nil {
		t.Fatal(err)
	}
	if len(h.Events()) != 0 {
		t.Fatal("clean field emitted events")
	}
	bad := []float64{1, math.Inf(1), 3}
	err := w.GuardField("ns.step", "v", bad)
	if err == nil {
		t.Fatal("Inf passed the guard")
	}
	if !strings.Contains(err.Error(), `"v"`) || !strings.Contains(err.Error(), "index 1") {
		t.Fatalf("guard error lacks context: %v", err)
	}
	if h.Healthy() {
		t.Fatal("NaN guard must trip the verdict")
	}
	ev := h.Events()
	if len(ev) != 1 || ev[0].Watchdog != "nan-guard" || ev[0].Severity != SevCritical || ev[0].Track != "patch:A" {
		t.Fatalf("unexpected event: %+v", ev)
	}
}

// TestHealthzTripAndFlight is the end-to-end acceptance path: a live HTTP
// monitor flips /healthz 200→503 when a watchdog trips, and the trip writes a
// flight-*.json carrying every rank's recent spans and the health timeline.
func TestHealthzTripAndFlight(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	r0 := reg.NewRecorder("rank0")
	r1 := reg.NewRecorder("rank1")
	r0.RecordSpan("ns.step", 0, time.Millisecond, 0, 2)
	r1.RecordSpan("ns.step", 0, 2*time.Millisecond, 0, 2)
	r0.Gauge("cg_iterations", 7)

	m := New(reg, Options{FlightDir: dir})
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, []byte, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header.Get("Content-Type")
	}

	// Healthy run: 200 JSON verdict, valid metrics.
	code, body, ctype := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d while healthy, want 200", code)
	}
	if ctype != "application/json" {
		t.Fatalf("/healthz content-type %q", ctype)
	}
	var v Verdict
	if err := json.Unmarshal(body, &v); err != nil || !v.Healthy || v.Status != "healthy" {
		t.Fatalf("healthy verdict = %s (err %v)", body, err)
	}
	code, body, ctype = get("/metrics")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics = %d %q", code, ctype)
	}
	if !strings.Contains(string(body), "nektarg_health_healthy 1") {
		t.Fatalf("metrics missing healthy gauge:\n%s", body)
	}

	// Trip a NaN guard — exactly what nektar3d does when a field corrupts.
	w := m.Health().Watch("rank0")
	if err := w.GuardField("ns.step", "u", []float64{0, math.NaN()}); err == nil {
		t.Fatal("guard did not trip")
	}

	code, body, _ = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after trip, want 503", code)
	}
	if err := json.Unmarshal(body, &v); err != nil || v.Healthy || v.Status != "unhealthy" || v.Trips != 1 {
		t.Fatalf("tripped verdict = %s (err %v)", body, err)
	}
	if len(v.Critical) != 1 || v.Critical[0].Watchdog != "nan-guard" {
		t.Fatalf("verdict critical events = %+v", v.Critical)
	}
	_, body, _ = get("/metrics")
	if !strings.Contains(string(body), "nektarg_health_healthy 0") ||
		!strings.Contains(string(body), "nektarg_health_trips_total 1") {
		t.Fatalf("metrics did not flip after trip:\n%s", body)
	}

	// The trip auto-fired the flight recorder.
	dumps := m.Flight().Dumps()
	if len(dumps) != 1 {
		t.Fatalf("flight dumps after trip: %v, want exactly 1", dumps)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("flight dump not valid JSON: %v", err)
	}
	if d.Trip == nil || d.Trip.Watchdog != "nan-guard" {
		t.Fatalf("dump trip = %+v", d.Trip)
	}
	if !strings.HasPrefix(d.Reason, "watchdog:") {
		t.Fatalf("dump reason = %q", d.Reason)
	}
	if len(d.Tracks) != 2 {
		t.Fatalf("dump carries %d tracks, want every rank (2)", len(d.Tracks))
	}
	for _, tr := range d.Tracks {
		if len(tr.Spans) == 0 {
			t.Fatalf("track %q dumped without spans", tr.Track)
		}
		if tr.Stages["ns.step"].Count == 0 {
			t.Fatalf("track %q dumped without stage aggregates", tr.Track)
		}
	}
	if len(d.Events) == 0 || d.Verdict.Healthy {
		t.Fatalf("dump health timeline incomplete: %d events, verdict %+v", len(d.Events), d.Verdict)
	}

	// /imbalance serves the analyzer table.
	code, body, _ = get("/imbalance")
	if code != http.StatusOK || !strings.Contains(string(body), "ns.step") {
		t.Fatalf("/imbalance = %d:\n%s", code, body)
	}

	// pprof index is mounted.
	code, _, _ = get("/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

// TestFlightDumpLimit pins the per-run dump budget: past DefaultFlightLimit
// dumps, Dump returns "" and POST /flight answers 429.
func TestFlightDumpLimit(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	reg.NewRecorder("rank0").RecordSpan("s", 0, time.Millisecond, 0, 0)
	m := New(reg, Options{FlightDir: dir})
	for i := 0; i < DefaultFlightLimit; i++ {
		path, err := m.Flight().Dump("manual", nil)
		if err != nil || path == "" {
			t.Fatalf("dump %d: path=%q err=%v", i, path, err)
		}
	}
	path, err := m.Flight().Dump("manual", nil)
	if err != nil || path != "" {
		t.Fatalf("dump past limit: path=%q err=%v, want silent refusal", path, err)
	}
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Post(srv.URL()+"/flight", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST /flight past limit = %d, want 429", resp.StatusCode)
	}
}

// TestScrapeWhileStepping races live HTTP scrapes against a solver goroutine
// actively recording — verify.sh runs this under -race; any unsynchronized
// access between the recorder's owner and the exporter fails the build.
func TestScrapeWhileStepping(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := reg.NewRecorder("rank0")
	m := New(reg, Options{FlightDir: t.TempDir()})
	w := m.Health().Watch("rank0")
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "solver": owns the recorder, steps as fast as it can
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := rec.Begin("ns.step")
			rec.Gauge("cg_iterations", float64(i%40))
			rec.CountMessage(telemetry.LevelL4, telemetry.OpCoupling, 512)
			w.ObserveCFL("ns.step", 0.3, 1)
			sp.End()
		}
	}()
	for i := 0; i < 25; i++ {
		for _, path := range []string{"/metrics", "/healthz", "/imbalance"} {
			resp, err := http.Get(srv.URL() + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}
	close(stop)
	wg.Wait()
}

// disabledWatch is package state so the compiler cannot prove the receiver
// nil and fold the probes away (same trick as telemetry's overhead test).
var disabledWatch *Watchdogs

// disabledField keeps the guard input alive across benchmark iterations.
var disabledField = make([]float64, 1024)

// TestMonitorDisabledZeroCost is the zero-cost-when-disabled guard run by
// scripts/verify.sh: every watchdog probe on a nil bundle must allocate
// nothing and stay within the same budget telemetry's disabled path honors —
// monitoring off may not tax the solver hot loops.
func TestMonitorDisabledZeroCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	st := linalg.SolveStats{Converged: true, Residual: 1e-9, History: []float64{1, 1e-9}}
	probe := func() {
		disabledWatch.GuardField("ns.step", "u", disabledField)
		disabledWatch.GuardValue("dpd.step", "particle", 1.5, 0)
		disabledWatch.ObserveSolve("ns.pressure", st, 100)
		disabledWatch.ObserveCFL("1d.step", 0.5, 1)
		disabledWatch.ObserveParticles(1000)
	}
	allocs := testing.AllocsPerRun(1000, probe)
	if allocs != 0 {
		t.Fatalf("disabled watchdog probes allocate %.1f objects per op, want 0", allocs)
	}
	if raceEnabled {
		t.Skip("ns/op guard skipped under the race detector (instrumentation overhead)")
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			probe()
		}
	})
	const maxNs = 50.0
	if ns := float64(res.NsPerOp()); ns > maxNs {
		t.Fatalf("disabled watchdog probes cost %.1f ns/op, budget %.0f ns/op", ns, maxNs)
	}
}

func BenchmarkDisabledWatchdogProbe(b *testing.B) {
	st := linalg.SolveStats{Converged: true, Residual: 1e-9, History: []float64{1, 1e-9}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledWatch.ObserveSolve("ns.pressure", st, 100)
		disabledWatch.ObserveCFL("1d.step", 0.5, 1)
	}
}

// benchSnaps builds the analyzer benchmark input: 64 tracks × 10 stages,
// roughly the paper's per-network rank counts.
func benchSnaps() []*telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	stages := []string{"ns.step", "ns.pressure", "ns.helmholtz", "exchange", "gather",
		"scatter", "dpd.step", "1d.step", "interp", "reduce"}
	var snaps []*telemetry.Snapshot
	for tr := 0; tr < 64; tr++ {
		r := reg.NewRecorder("rank" + string(rune('0'+tr%10)) + string(rune('a'+tr/10)))
		for si, s := range stages {
			for k := 0; k < 4; k++ {
				r.RecordSpan(s, time.Duration(tr)*time.Millisecond,
					time.Duration(1+si+tr%7)*time.Millisecond, tr, tr+si)
			}
		}
		snaps = append(snaps, r.Snapshot())
	}
	return snaps
}

// BenchmarkAnalyzeImbalance measures the analyzer over a 64-track × 10-stage
// cluster — the per-scrape cost of the imbalance families in /metrics.
func BenchmarkAnalyzeImbalance(b *testing.B) {
	snaps := benchSnaps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := AnalyzeImbalance(snaps); len(out) != 10 {
			b.Fatalf("analyzer returned %d stages", len(out))
		}
	}
}

// BenchmarkWriteMetrics measures a full exposition render at the same scale.
func BenchmarkWriteMetrics(b *testing.B) {
	snaps := benchSnaps()
	imb := AnalyzeImbalance(snaps)
	h := NewHealth()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteMetrics(io.Discard, "nektarg", snaps, imb, nil, h); err != nil {
			b.Fatal(err)
		}
	}
}
