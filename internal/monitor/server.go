package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Handler returns the monitor's HTTP surface:
//
//	GET  /            tiny plain-text index
//	GET  /metrics     Prometheus text exposition (stage seconds, traffic
//	                  bytes by level×op, solver gauges, per-stage imbalance)
//	GET  /healthz     JSON verdict; 200 while healthy, 503 once a watchdog
//	                  has tripped
//	GET  /imbalance   FormatImbalanceTable report (text)
//	GET  /snapshot    latest in-situ frame metadata + drop/staleness gauges
//	                  (JSON; 404 until an in-situ source is wired, 503 before
//	                  the first frame assembles)
//	GET  /snapshot/vtk  latest assembled frame as concatenated legacy VTK
//	                  documents, one per piece, split on "# === insitu piece"
//	                  banners
//	GET  /history     performance-history time series (JSON; query params
//	                  series= name-prefix filter, tier= downsample level,
//	                  max= newest-N truncation; 404 until a history source
//	                  is wired)
//	GET  /anomalies   detected performance anomalies with per-kind totals
//	                  (JSON; 404 until a history source is wired)
//	GET  /buildinfo   binary provenance (module version, VCS revision, toolchain)
//	POST /flight      trigger a manual flight dump; returns the path
//	GET  /debug/pprof/*  live profiling (pprof index, profile, trace, ...)
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "nektarg monitor\n\nGET  /metrics\nGET  /healthz\nGET  /audit\nGET  /imbalance\nGET  /history\nGET  /anomalies\nGET  /snapshot\nGET  /snapshot/vtk\nGET  /buildinfo\nPOST /flight\nGET  /debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snaps := m.Snapshots()
		imb := AnalyzeImbalance(snaps)
		if err := WriteMetrics(w, m.ns, snaps, imb, m.Stats(), m.health); err != nil {
			// Headers are gone; nothing recoverable — the scraper sees a
			// truncated body and retries.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		v := m.health.Verdict()
		w.Header().Set("Content-Type", "application/json")
		if !v.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/audit", func(w http.ResponseWriter, r *http.Request) {
		src := m.auditSource()
		if src == nil {
			http.Error(w, "no audit ledger wired (run without -audit?)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		src.WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/history", func(w http.ResponseWriter, r *http.Request) {
		src := m.HistorySource()
		if src == nil {
			http.Error(w, "no history plane wired (run without -history?)", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		tier := queryInt(q.Get("tier"), -1)
		max := queryInt(q.Get("max"), 512)
		doc, err := src.HistoryJSON(q.Get("series"), tier, max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/anomalies", func(w http.ResponseWriter, r *http.Request) {
		src := m.HistorySource()
		if src == nil {
			http.Error(w, "no history plane wired (run without -history?)", http.StatusNotFound)
			return
		}
		doc, err := src.AnomaliesJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(doc) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/imbalance", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, FormatImbalanceTable(m.Imbalance()))
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		src := m.snapshotSource()
		if src == nil {
			http.Error(w, "no in-situ source wired (run without -insitu?)", http.StatusNotFound)
			return
		}
		meta, err := src.SnapshotMeta()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(meta) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/snapshot/vtk", func(w http.ResponseWriter, r *http.Request) {
		src := m.snapshotSource()
		if src == nil {
			http.Error(w, "no in-situ source wired (run without -insitu?)", http.StatusNotFound)
			return
		}
		// Buffer first: SnapshotVTK's only error before any bytes flow is
		// "no frame yet", which must map to 503, and headers are immutable
		// once the body starts.
		var buf bytes.Buffer
		if err := src.SnapshotVTK(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		buf.WriteTo(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		ReadBuildInfo().WriteJSON(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST to trigger a flight dump", http.StatusMethodNotAllowed)
			return
		}
		path, err := m.flight.Dump("manual", nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if path == "" {
			http.Error(w, "flight dump limit reached for this run", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, path)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// queryInt parses an optional integer query parameter, falling back to def
// on absence or garbage.
func queryInt(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}

// Server is a running monitor HTTP endpoint.
type Server struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
	ln   net.Listener
	done chan error
}

// Serve starts the monitor's HTTP server on addr (e.g. ":9090", or ":0" for
// an ephemeral port) and returns once the listener is bound; requests are
// served on a background goroutine. Close the returned server to stop.
func (m *Monitor) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: m.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: ln.Addr().String(), srv: srv, ln: ln, done: make(chan error, 1)}
	go func() { s.done <- srv.Serve(ln) }()
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr }

// Close shuts the server down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
