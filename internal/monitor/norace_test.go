//go:build !race

package monitor

// raceEnabled is false in uninstrumented builds; see race_test.go.
const raceEnabled = false
