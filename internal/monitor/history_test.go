package monitor

// Monitor-side tests for the performance-history plane wiring: the Go
// runtime gauges every monitor exposes, the /history and /anomalies routes
// behind the HistorySource seam, and the anomaly flight-dump budget being
// independent of the shared watchdog/panic budget.

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nektarg/internal/telemetry"
)

// TestRuntimeGaugesInMetrics: every monitor serves the Go runtime's health
// gauges on /metrics without any producer wiring — the "is the process
// itself degrading?" half of a slow-run diagnosis.
func TestRuntimeGaugesInMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewRecorder("rank0").RecordSpan("s", 0, time.Millisecond, 0, 0)
	m := New(reg, Options{FlightDir: t.TempDir()})
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck // test cleanup
	body := httpGetBody(t, srv.URL()+"/metrics")
	for _, want := range []string{
		"go_heap_alloc_bytes",
		"go_gc_pause_seconds_total",
		"go_goroutines",
		"process_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("GET /metrics missing runtime gauge %q", want)
		}
	}
}

// fakeHistory is a stub HistorySource pinning the monitor's pass-through of
// query parameters and bodies.
type fakeHistory struct {
	prefix    string
	tier, max int
}

func (f *fakeHistory) HistoryJSON(prefix string, tier, maxPoints int) ([]byte, error) {
	f.prefix, f.tier, f.max = prefix, tier, maxPoints
	return []byte(`{"series":[]}`), nil
}

func (f *fakeHistory) AnomaliesJSON() ([]byte, error) {
	return []byte(`{"total":0}`), nil
}

// TestHistoryEndpoints: /history and /anomalies 404 until a source is wired,
// then serve its documents with the query parameters passed through.
func TestHistoryEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := New(reg, Options{FlightDir: t.TempDir()})
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck // test cleanup

	for _, path := range []string{"/history", "/anomalies"} {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // test cleanup
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without a source = %d, want 404", path, resp.StatusCode)
		}
	}

	src := &fakeHistory{}
	m.SetHistorySource(src)
	if body := httpGetBody(t, srv.URL()+"/history?series=stage.&tier=2&max=32"); body != `{"series":[]}` {
		t.Fatalf("GET /history body = %q", body)
	}
	if src.prefix != "stage." || src.tier != 2 || src.max != 32 {
		t.Fatalf("query pass-through = %+v, want stage./2/32", src)
	}
	if body := httpGetBody(t, srv.URL()+"/anomalies"); body != `{"total":0}` {
		t.Fatalf("GET /anomalies body = %q", body)
	}
}

// TestAnomalyDumpBudgetIndependent: performance-anomaly flight dumps draw on
// their own cap, so an anomaly cascade can never starve the dump that
// matters most — the watchdog trip or rank panic at the end of the run.
func TestAnomalyDumpBudgetIndependent(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewRecorder("rank0").RecordSpan("s", 0, time.Millisecond, 0, 0)
	m := New(reg, Options{FlightDir: t.TempDir(), FlightAnomalyLimit: 2})
	f := m.Flight()
	if f.AnomalyLimit() != 2 || f.Limit() != DefaultFlightLimit {
		t.Fatalf("limits = %d/%d, want 2 anomaly, %d shared", f.AnomalyLimit(), f.Limit(), DefaultFlightLimit)
	}

	// Exhaust the shared budget first — anomaly dumps must still land.
	for i := 0; i < DefaultFlightLimit; i++ {
		if path, err := f.Dump("manual", nil); err != nil || path == "" {
			t.Fatalf("shared dump %d: path=%q err=%v", i, path, err)
		}
	}
	if path, _ := f.Dump("manual", nil); path != "" {
		t.Fatal("shared budget not exhausted")
	}
	for i := 0; i < 2; i++ {
		if path, err := f.DumpAnomaly("perf-anomaly step-time"); err != nil || path == "" {
			t.Fatalf("anomaly dump %d with exhausted shared budget: path=%q err=%v", i, path, err)
		}
	}
	// And the anomaly cap itself still bites.
	if path, err := f.DumpAnomaly("perf-anomaly step-time"); err != nil || path != "" {
		t.Fatalf("anomaly dump past its cap: path=%q err=%v, want silent refusal", path, err)
	}
	if n, a := len(f.Dumps()), len(f.AnomalyDumps()); n != DefaultFlightLimit || a != 2 {
		t.Fatalf("dump ledgers = %d shared / %d anomaly, want %d/2", n, a, DefaultFlightLimit)
	}
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck // test cleanup
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}
