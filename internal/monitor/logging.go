package monitor

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured logger from the CLIs' -log-level and
// -log-format flag values. level is one of debug|info|warn|error; format is
// text|json. Log records carry whatever attrs the call sites attach (track,
// exchange, watchdog, ...) so log lines are machine-joinable with the
// telemetry and health timelines.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("monitor: unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("monitor: unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}
