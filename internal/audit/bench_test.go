package audit

import (
	"io"
	"testing"
)

// TestAuditDisabledZeroCost pins the nil-is-disabled contract: every audit
// hook the metasolver calls unconditionally per exchange must cost zero
// allocations when the plane is off. verify.sh runs this by name.
func TestAuditDisabledZeroCost(t *testing.T) {
	var l *Ledger
	if n := testing.AllocsPerRun(1000, func() {
		l.ObserveResidual("gi.flux:omegaA", 0.01, 1.0)
		l.ObserveDrift("mass.div:pipe", 1e-9)
		l.CountExchange("omegaA", 4096, 4096, 4096)
		l.EndExchange(3)
		if !l.Healthy() {
			t.Fatal("nil ledger unhealthy")
		}
	}); n != 0 {
		t.Fatalf("disabled per-exchange hooks allocate %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if l.Stats() != nil || l.CaptureState() != nil {
			t.Fatal("nil ledger produced output")
		}
		l.ApplyState(nil)
	}); n != 0 {
		t.Fatalf("disabled scrape/checkpoint hooks allocate %.1f/op, want 0", n)
	}
}

// BenchmarkAuditDisabledHook is the cost the metasolver pays per exchange
// with the plane off: a handful of nil checks.
func BenchmarkAuditDisabledHook(b *testing.B) {
	var l *Ledger
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.ObserveResidual("gi.flux:omegaA", 0.01, 1.0)
		l.ObserveDrift("mass.div:pipe", 1e-9)
		l.CountExchange("omegaA", 4096, 4096, 4096)
		l.EndExchange(i)
	}
}

// BenchmarkAuditExchangeUpdate is one full enabled per-exchange ledger
// update over a representative budget set (the acceptance scenario's nine
// budgets), including band judgement and EMA adaptation.
func BenchmarkAuditExchangeUpdate(b *testing.B) {
	l := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.ObserveDrift("mass.div:pipeA", 1e-9)
		l.ObserveDrift("mass.div:pipeB", 2e-9)
		l.ObserveDrift("energy.kinetic:pipeA", 0.42)
		l.ObserveDrift("energy.kinetic:pipeB", 0.40)
		l.ObserveResidual("gi.flux:omegaA", 0.001, 1.0)
		l.CountExchange("omegaA", 4096, 4096, 4096)
		l.ObserveDrift("momentum:omegaA", 0.02)
		l.ObserveResidual("temperature:omegaA", 0.05, 1.0)
		l.ObserveDrift("1d.mass:tree", 1e-6)
		l.ObserveResidual("q.match:pipeB:x1", 0.001, 0.1)
		l.EndExchange(i)
	}
}

// BenchmarkAuditExposition is one /audit scrape (status snapshot + JSON
// encode) against a live nine-budget ledger.
func BenchmarkAuditExposition(b *testing.B) {
	l := New(Options{})
	for i := 0; i < 16; i++ {
		l.ObserveDrift("mass.div:pipeA", 1e-9)
		l.ObserveDrift("energy.kinetic:pipeA", 0.42)
		l.ObserveResidual("gi.flux:omegaA", 0.001, 1.0)
		l.CountExchange("omegaA", 4096, 4096, 4096)
		l.ObserveDrift("momentum:omegaA", 0.02)
		l.ObserveResidual("temperature:omegaA", 0.05, 1.0)
		l.ObserveDrift("1d.mass:tree", 1e-6)
		l.ObserveResidual("q.match:pipeB:x1", 0.001, 0.1)
		l.EndExchange(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.WriteJSON(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAuditStats is the Prometheus stat-source poll the monitor makes
// per scrape.
func BenchmarkAuditStats(b *testing.B) {
	l := New(Options{})
	for i := 0; i < 16; i++ {
		l.ObserveDrift("mass.div:pipeA", 1e-9)
		l.ObserveResidual("gi.flux:omegaA", 0.001, 1.0)
		l.ObserveDrift("1d.mass:tree", 1e-6)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := l.Stats(); len(s) == 0 {
			b.Fatal("empty stats")
		}
	}
}
