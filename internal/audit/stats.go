// Exposition: the ledger's scrape-time faces. Stats feeds the
// nektarg_audit_* Prometheus families through monitor.AddStatSource (and
// from there into the fleet rollup, relabeled per process); WriteJSON is
// the GET /audit document; FormatTable is the end-of-run CLI report.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"nektarg/internal/monitor"
)

// Stats renders the ledger as monitor stat samples, one audit_* family per
// statistic with the budget name as a label. Safe from any goroutine; nil
// ledger yields nil (the monitor simply exposes nothing).
func (l *Ledger) Stats() []monitor.Stat {
	if l == nil {
		return nil
	}
	rep := l.Status()
	out := make([]monitor.Stat, 0, 4*len(rep.Budgets)+3)
	out = append(out,
		monitor.Stat{
			Name: "audit_exchanges_total", Type: "counter",
			Help:  "Coupling exchanges stamped into the physics audit ledger.",
			Value: float64(rep.Exchanges),
		},
		monitor.Stat{
			Name: "audit_violations_total", Type: "counter",
			Help:  "Audit budget severity transitions (step or leak) latched since the run began.",
			Value: float64(rep.Violations),
		},
		monitor.Stat{
			Name: "audit_worst_severity", Type: "gauge",
			Help:  "Worst latched audit severity across all budgets (0 ok, 1 warn, 2 critical).",
			Value: float64(rep.Worst),
		},
	)
	for _, b := range rep.Budgets {
		lbl := [][2]string{{"budget", b.Name}}
		out = append(out,
			monitor.Stat{
				Name: "audit_budget_rel", Type: "gauge", Labels: lbl,
				Help:  "Last per-exchange relative defect (residual budgets) or jump (drift budgets).",
				Value: b.Rel,
			},
			monitor.Stat{
				Name: "audit_budget_ema", Type: "gauge", Labels: lbl,
				Help:  "Slow-leak statistic: EMA of the signed relative defect, or reference drift from baseline.",
				Value: b.EMA,
			},
			monitor.Stat{
				Name: "audit_budget_severity", Type: "gauge", Labels: lbl,
				Help:  "Latched budget severity (0 ok, 1 warn, 2 critical), max of step and leak taxonomies.",
				Value: float64(maxSev(b.StepSeverity, b.LeakSeverity)),
			},
			monitor.Stat{
				Name: "audit_budget_violations_total", Type: "counter", Labels: lbl,
				Help:  "Severity transitions latched by this budget.",
				Value: float64(b.Violations),
			},
		)
	}
	return out
}

func maxSev(a, b Severity) Severity {
	if b > a {
		return b
	}
	return a
}

// WriteJSON serializes the full ledger status as the GET /audit document.
func (l *Ledger) WriteJSON(w io.Writer) error {
	rep := l.Status()
	rep.WorstSeverity = rep.Worst.String()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// FormatTable renders the end-of-run audit summary for the CLI log: one
// line per budget, worst severity first so a violated run's report leads
// with the violation. Nil or empty ledgers render an explicit placeholder.
func (l *Ledger) FormatTable() string {
	rep := l.Status()
	if len(rep.Budgets) == 0 {
		return "physics audit: no budgets observed\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "physics audit: %d exchanges, worst=%s, %d violation(s)\n",
		rep.Exchanges, rep.Worst, rep.Violations)
	fmt.Fprintf(&sb, "  %-28s %-8s %12s %12s %-9s %-9s %s\n",
		"budget", "mode", "rel", "ema", "step", "leak", "count")
	for _, b := range rep.Budgets {
		fmt.Fprintf(&sb, "  %-28s %-8s %12.4g %12.4g %-9s %-9s %d\n",
			b.Name, b.Mode, b.Rel, b.EMA, b.StepSev, b.LeakSev, b.Count)
	}
	return sb.String()
}
