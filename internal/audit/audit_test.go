package audit

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestResidualStepBands walks a residual budget through the three step
// severities and checks the latch discipline: warn emits once, critical
// latches for good, recovery from warn re-arms.
func TestResidualStepBands(t *testing.T) {
	var got []Violation
	l := New(Options{})
	l.OnViolation(func(v Violation) { got = append(got, v) })

	// gi.flux class: warn 0.02, critical 0.10.
	l.ObserveResidual("gi.flux:omegaA", 0.001, 1.0) // rel 0.001 — ok
	if len(got) != 0 {
		t.Fatalf("in-band observation emitted %d violations", len(got))
	}
	l.ObserveResidual("gi.flux:omegaA", 0.05, 1.0) // warn
	if len(got) != 1 || got[0].Severity != SevWarn || got[0].Kind != "step" {
		t.Fatalf("warn transition: got %+v", got)
	}
	l.ObserveResidual("gi.flux:omegaA", 0.06, 1.0) // still warn: no re-emit
	if len(got) != 1 {
		t.Fatalf("repeated warn re-emitted: %d violations", len(got))
	}
	l.ObserveResidual("gi.flux:omegaA", 0.5, 1.0) // critical
	if len(got) != 2 || got[1].Severity != SevCritical {
		t.Fatalf("critical transition: got %+v", got)
	}
	l.ObserveResidual("gi.flux:omegaA", 0.0, 1.0) // critical latches
	rep := l.Status()
	if rep.Budgets[0].StepSeverity != SevCritical {
		t.Fatalf("critical did not latch: %+v", rep.Budgets[0])
	}
	if len(got) != 2 {
		t.Fatalf("latched critical emitted more violations: %d", len(got))
	}
	if l.Healthy() {
		t.Fatal("ledger with latched critical reports healthy")
	}
}

// TestResidualWarnRecovery checks that warn (unlike critical) re-arms when
// the defect returns inside the band.
func TestResidualWarnRecovery(t *testing.T) {
	l := New(Options{})
	l.ObserveResidual("gi.flux:omegaA", 0.05, 1.0) // warn
	l.ObserveResidual("gi.flux:omegaA", 0.001, 1.0)
	rep := l.Status()
	if rep.Budgets[0].StepSeverity != SevOK {
		t.Fatalf("warn did not recover: %+v", rep.Budgets[0])
	}
	if !l.Healthy() {
		t.Fatal("recovered ledger reports unhealthy")
	}
}

// TestSlowLeakDetection feeds a residual budget a bias far below the step
// bands and requires the EMA leak taxonomy — and only it — to trip.
func TestSlowLeakDetection(t *testing.T) {
	var got []Violation
	l := New(Options{})
	l.OnViolation(func(v Violation) { got = append(got, v) })
	// gi.flux leak bands: warn 0.005, critical 0.05; step warn 0.02. A
	// persistent +1% bias never trips the step band but its EMA settles at
	// 0.01 > leak-warn.
	for i := 0; i < 200; i++ {
		l.ObserveResidual("gi.flux:omegaA", 0.01, 1.0)
	}
	rep := l.Status()
	if rep.Budgets[0].StepSeverity != SevOK {
		t.Fatalf("1%% bias tripped the step band: %+v", rep.Budgets[0])
	}
	if rep.Budgets[0].LeakSeverity != SevWarn {
		t.Fatalf("1%% bias did not trip the leak band: %+v", rep.Budgets[0])
	}
	if len(got) != 1 || got[0].Kind != "leak" {
		t.Fatalf("leak violations: %+v", got)
	}
}

// TestDriftStepAndLeak checks drift mode: seeding, jump detection against
// the EMA reference, and baseline-excursion leak detection.
func TestDriftStepAndLeak(t *testing.T) {
	l := New(Options{
		PerBudget: map[string]Tolerance{
			"1d.mass:tree": {Warn: 0.1, Critical: 0.5, LeakWarn: 0.3, LeakCritical: 1.0, Alpha: 0.5, LeakMinCount: 2},
		},
	})
	l.ObserveDrift("1d.mass:tree", 100) // seeds ref and baseline
	rep := l.Status()
	if rep.Budgets[0].Count != 1 || rep.Budgets[0].Ref != 100 || rep.Budgets[0].Baseline != 100 {
		t.Fatalf("seed: %+v", rep.Budgets[0])
	}
	l.ObserveDrift("1d.mass:tree", 101) // 1% jump: ok
	if rep = l.Status(); rep.Budgets[0].StepSeverity != SevOK {
		t.Fatalf("1%% jump tripped: %+v", rep.Budgets[0])
	}
	l.ObserveDrift("1d.mass:tree", 130) // ~29% jump from ref≈100.5: warn
	if rep = l.Status(); rep.Budgets[0].StepSeverity != SevWarn {
		t.Fatalf("29%% jump did not warn: %+v", rep.Budgets[0])
	}
	// Walk the value upward so the adapting reference migrates ≥30% from
	// the baseline: the leak taxonomy must fire even though each further
	// step stays inside the (recovered) step band.
	v := 130.0
	for i := 0; i < 20; i++ {
		v *= 1.05
		l.ObserveDrift("1d.mass:tree", v)
	}
	rep = l.Status()
	if rep.Budgets[0].LeakSeverity == SevOK {
		t.Fatalf("reference migration did not trip leak: %+v", rep.Budgets[0])
	}
}

// TestByteLegReconciliation checks CountExchange: equal legs stay ok, any
// mismatch is critical under the exact gi.bytes bands.
func TestByteLegReconciliation(t *testing.T) {
	l := New(Options{})
	l.CountExchange("omegaA", 4096, 4096, 4096)
	rep := l.Status()
	if rep.Worst != SevOK {
		t.Fatalf("matched byte legs flagged: %+v", rep)
	}
	if rep.BytesSent != 4096 || rep.BytesReceived != 4096 || rep.BytesApplied != 4096 {
		t.Fatalf("byte totals: %+v", rep)
	}
	l.CountExchange("omegaA", 4096, 4096, 4000) // applied leg short
	rep = l.Status()
	if rep.Worst != SevCritical {
		t.Fatalf("byte mismatch not critical: %+v", rep)
	}
}

// TestToleranceResolution checks base → class → exact overlay order.
func TestToleranceResolution(t *testing.T) {
	l := New(Options{
		Tolerance: Tolerance{Warn: 0.2},
		PerClass:  map[string]Tolerance{"gi.flux": {Warn: 0.04}},
		PerBudget: map[string]Tolerance{"gi.flux:special": {Warn: 0.5}},
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.toleranceForLocked("unknown:thing").Warn; w != 0.2 {
		t.Fatalf("base overlay: warn %g, want 0.2", w)
	}
	if w := l.toleranceForLocked("gi.flux:omegaA").Warn; w != 0.04 {
		t.Fatalf("class overlay: warn %g, want 0.04", w)
	}
	if w := l.toleranceForLocked("gi.flux:special").Warn; w != 0.5 {
		t.Fatalf("exact overlay: warn %g, want 0.5", w)
	}
}

// TestStateRoundTrip pins bit-exact capture/apply through a gob cycle —
// the property the checkpoint layer depends on.
func TestStateRoundTrip(t *testing.T) {
	l := New(Options{})
	for i := 0; i < 37; i++ {
		l.ObserveResidual("gi.flux:omegaA", 0.003*float64(i%5), 1.0)
		l.ObserveDrift("1d.mass:tree", 100+0.1*float64(i))
		l.CountExchange("omegaA", 1024, 1024, 1024)
		l.EndExchange(i + 1)
	}
	st := l.CaptureState()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, &decoded) {
		t.Fatalf("gob round-trip mutated state:\n%+v\n%+v", st, &decoded)
	}

	fresh := New(Options{})
	fresh.ApplyState(&decoded)
	if got := fresh.CaptureState(); !reflect.DeepEqual(st, got) {
		t.Fatalf("apply/capture not bit-exact:\n%+v\n%+v", st, got)
	}

	// Continuing both ledgers identically must keep them bit-identical:
	// the EMA chain depends on every captured float.
	for i := 0; i < 11; i++ {
		for _, led := range []*Ledger{l, fresh} {
			led.ObserveResidual("gi.flux:omegaA", 0.007, 1.0)
			led.ObserveDrift("1d.mass:tree", 104-0.2*float64(i))
		}
	}
	if a, b := l.CaptureState(), fresh.CaptureState(); !reflect.DeepEqual(a, b) {
		t.Fatalf("post-restore continuation diverged:\n%+v\n%+v", a, b)
	}
}

// TestApplyStateRestoresLatch checks that a latched critical survives the
// round-trip and that restoring an older, clean state clears a latch (the
// resume-overwrites semantics).
func TestApplyStateRestoresLatch(t *testing.T) {
	l := New(Options{})
	l.ObserveResidual("gi.flux:omegaA", 0.001, 1.0)
	clean := l.CaptureState()
	l.ObserveResidual("gi.flux:omegaA", 0.9, 1.0) // critical
	dirty := l.CaptureState()

	fresh := New(Options{})
	fresh.ApplyState(dirty)
	if fresh.Healthy() {
		t.Fatal("restored critical latch lost")
	}
	fresh.ApplyState(clean)
	if !fresh.Healthy() {
		t.Fatal("restoring clean state did not clear latch")
	}
}

// TestStatsAndJSON spot-checks the exposition faces.
func TestStatsAndJSON(t *testing.T) {
	l := New(Options{})
	l.ObserveResidual("gi.flux:omegaA", 0.5, 1.0) // critical
	l.EndExchange(7)

	stats := l.Stats()
	byName := map[string]float64{}
	for _, s := range stats {
		if s.Help == "" || s.Type == "" {
			t.Fatalf("stat %q missing help/type metadata", s.Name)
		}
		byName[s.Name] = s.Value
	}
	if byName["audit_worst_severity"] != 2 {
		t.Fatalf("worst severity stat: %v", byName)
	}
	if byName["audit_exchanges_total"] != 7 {
		t.Fatalf("exchanges stat: %v", byName)
	}

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{`"worst_severity": "critical"`, `"gi.flux:omegaA"`, `"exchanges": 7`} {
		if !strings.Contains(doc, want) {
			t.Fatalf("/audit JSON missing %q:\n%s", want, doc)
		}
	}

	table := l.FormatTable()
	if !strings.Contains(table, "gi.flux:omegaA") || !strings.Contains(table, "critical") {
		t.Fatalf("table: %s", table)
	}
	if got := (*Ledger)(nil).FormatTable(); !strings.Contains(got, "no budgets") {
		t.Fatalf("nil table: %q", got)
	}
}

// TestFloorGuardsRelative checks that a tiny scale falls back to the floor
// rather than dividing by ~zero.
func TestFloorGuardsRelative(t *testing.T) {
	l := New(Options{
		PerBudget: map[string]Tolerance{"q.match:x": {Floor: 1.0, Warn: 0.5, Critical: 2.0}},
	})
	l.ObserveResidual("q.match:x", 0.1, 1e-300)
	rep := l.Status()
	if math.Abs(rep.Budgets[0].Rel-0.1) > 1e-15 {
		t.Fatalf("floor not applied: rel %g, want 0.1", rep.Budgets[0].Rel)
	}
	if rep.Worst != SevOK {
		t.Fatalf("floored defect flagged: %+v", rep)
	}
}
