// Ledger state capture/restore. The ledger's budgets are part of the
// resumable physics state: EMAs, references, baselines and latched
// severities must survive a kill -9 exactly, or a resumed run would re-seed
// its drift baselines from mid-run values and a slow leak that started
// before the checkpoint would vanish from the books. State round-trips
// bit-exactly (float64 fields are copied, never recomputed), which is what
// the resume-continuity acceptance test pins: N+M exchanges through a
// checkpoint round-trip must equal N+M straight, bit for bit.
package audit

import "sort"

// BudgetState is the serializable subset of one budget.
type BudgetState struct {
	Name     string
	Mode     string
	Count    int64
	Rel      float64
	EMA      float64
	Ref      float64
	Baseline float64
	Seeded   bool
	// StepSeverity and LeakSeverity restore the latch discipline: a
	// critical latched before the checkpoint stays latched after resume.
	StepSeverity Severity
	LeakSeverity Severity
	Violations   int64
}

// State is the gob-serializable ledger snapshot stored in
// checkpoint.Coupled (format v3).
type State struct {
	Exchanges     int64
	BytesSent     int64
	BytesReceived int64
	BytesApplied  int64
	// Budgets is sorted by name so two captures of equal ledgers are
	// DeepEqual regardless of observation order.
	Budgets []BudgetState
}

// CaptureState snapshots the ledger for checkpointing. Nil ledger → nil
// state (the checkpoint simply omits the audit section).
func (l *Ledger) CaptureState() *State {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	st := &State{
		Exchanges:     l.exchanges,
		BytesSent:     l.bytesSent,
		BytesReceived: l.bytesReceived,
		BytesApplied:  l.bytesApplied,
	}
	for _, b := range l.budgets {
		st.Budgets = append(st.Budgets, BudgetState{
			Name: b.name, Mode: b.mode, Count: b.count,
			Rel: b.rel, EMA: b.ema, Ref: b.ref, Baseline: b.baseline,
			Seeded:       b.seeded,
			StepSeverity: b.stepSev, LeakSeverity: b.leakSev,
			Violations: b.violations,
		})
	}
	sort.Slice(st.Budgets, func(i, j int) bool { return st.Budgets[i].Name < st.Budgets[j].Name })
	return st
}

// ApplyState overlays a captured snapshot onto the ledger, replacing all
// live budgets — the restore half of the round-trip. Tolerances are
// configuration, not state: each restored budget re-resolves its bands from
// the ledger's current tables, so a retuned tolerance applies to resumed
// runs too. A nil state is a no-op (resuming a pre-v3 checkpoint leaves the
// fresh ledger to re-seed from the restored physics, the best available
// behaviour for legacy bundles).
func (l *Ledger) ApplyState(st *State) {
	if l == nil || st == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.exchanges = st.Exchanges
	l.bytesSent = st.BytesSent
	l.bytesReceived = st.BytesReceived
	l.bytesApplied = st.BytesApplied
	l.budgets = make(map[string]*budget, len(st.Budgets))
	l.order = l.order[:0]
	for _, bs := range st.Budgets {
		l.budgets[bs.Name] = &budget{
			name: bs.Name, tol: l.toleranceForLocked(bs.Name), mode: bs.Mode,
			count: bs.Count, rel: bs.Rel, ema: bs.EMA,
			ref: bs.Ref, baseline: bs.Baseline, seeded: bs.Seeded,
			stepSev: bs.StepSeverity, leakSev: bs.LeakSeverity,
			violations: bs.Violations,
		}
		l.order = append(l.order, bs.Name)
	}
}
