package audit

// Golden exposition test: the nektarg_audit_* Prometheus families rendered
// through monitor.WriteMetrics are pinned byte-for-byte, HELP/TYPE included,
// so a dashboard built on them cannot be broken by an accidental rename.

import (
	"bufio"
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nektarg/internal/monitor"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureLedger builds a deterministic ledger: three budgets across two
// exchanges, one latched critical, with dyadic values so every rendered
// float is exact.
func fixtureLedger() *Ledger {
	led := New(Options{})
	led.ObserveResidual("gi.flux:insert", 0, 1)
	led.ObserveDrift("mass.div:patchA", 0.5)
	led.CountExchange("insert", 24, 24, 24)
	led.EndExchange(1)
	led.ObserveResidual("gi.flux:insert", 0.5, 1) // 50% defect: critical
	led.ObserveDrift("mass.div:patchA", 0.5)
	led.CountExchange("insert", 24, 24, 24)
	led.EndExchange(2)
	return led
}

func TestGoldenAuditExposition(t *testing.T) {
	led := fixtureLedger()
	var buf bytes.Buffer
	if err := monitor.WriteMetrics(&buf, "nektarg", nil, nil, led.Stats(), monitor.NewHealth()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_audit.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("audit exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	for _, want := range []string{
		"# HELP nektarg_audit_budget_rel ",
		"# TYPE nektarg_audit_budget_rel gauge",
		`nektarg_audit_budget_severity{budget="gi.flux:insert"} 2`,
		"nektarg_audit_violations_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestAuditExpositionHelpTypeLint asserts every audit family is announced
// with a HELP and TYPE header before its first sample — the structural
// guarantee Prometheus scrapers rely on, independent of the golden bytes.
func TestAuditExpositionHelpTypeLint(t *testing.T) {
	var buf bytes.Buffer
	if err := monitor.WriteMetrics(&buf, "nektarg", nil, nil, fixtureLedger().Stats(), monitor.NewHealth()); err != nil {
		t.Fatal(err)
	}
	helped, typed := map[string]bool{}, map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			helped[strings.Fields(line)[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			typed[strings.Fields(line)[2]] = true
		case line != "":
			fam := line
			if i := strings.IndexAny(fam, "{ "); i >= 0 {
				fam = fam[:i]
			}
			if !helped[fam] || !typed[fam] {
				t.Errorf("sample %q emitted before its HELP/TYPE headers", line)
			}
		}
	}
	for _, fam := range []string{"nektarg_audit_exchanges_total", "nektarg_audit_violations_total",
		"nektarg_audit_worst_severity", "nektarg_audit_budget_rel", "nektarg_audit_budget_ema",
		"nektarg_audit_budget_severity", "nektarg_audit_budget_violations_total"} {
		if !helped[fam] || !typed[fam] {
			t.Errorf("family %s missing HELP or TYPE", fam)
		}
	}
}
