// Package audit is the physics half of the observability plane: where
// internal/monitor answers "is this run alive?" (NaN guards, CFL, CG,
// particle drift), audit answers "is this run *correct*, live?" — are mass,
// momentum and energy actually balanced across the solvers and across the
// ΓI continuum↔atomistic and 1D↔3D couplings, or is the run silently
// drifting toward the state the NaN watchdog will eventually catch?
//
// The Ledger tracks named per-exchange budgets, each in one of two modes:
//
//   - Residual budgets (ObserveResidual) watch a defect that has an exact
//     zero expectation — the ΓI flux mismatch between the velocities the
//     continuum side sent and the velocities the flux BC applied, the
//     kinetic-temperature deviation from the thermostat target, the realized
//     1D inlet flow versus the commanded 3D outlet flow. The step test is
//     |defect| / max(|scale|, floor) against the Warn/Critical bands; an
//     exponential moving average of the *signed* relative defect feeds the
//     slow-leak test, which catches a bias far below the step bands (a 1%
//     systematic loss per exchange never trips a 10% step band but
//     integrates to a broken run).
//
//   - Drift budgets (ObserveDrift) watch a quantity with no exact target —
//     the 3D divergence norm, the kinetic-energy budget, the per-particle
//     DPD momentum, the 1D network's conserved volume invariant. The first
//     observation seeds both a slowly adapting EMA reference and a fixed
//     baseline; a per-exchange jump relative to the reference is a step
//     change (the PR-3 particle-watchdog taxonomy), while the reference
//     itself migrating away from the baseline is a slow leak. Leak bands
//     default to off for quantities that legitimately evolve (a starting
//     flow's kinetic energy grows toward steady state) and on for genuine
//     invariants (the 1D network's V − ∫Q_in + ∫Q_out).
//
// Violations latch per budget exactly like watchdog transitions: severity
// transitions emit (to the health plane, the telemetry gauges, the journal
// via OnViolation) once, and critical latches for the life of the run until
// a checkpoint restore overlays an older ledger state.
//
// Disabled means nil, as everywhere in this codebase: every method on a nil
// *Ledger is a no-op costing one nil check and zero allocations, pinned by
// TestAuditDisabledZeroCost in verify.sh. The enabled path takes a mutex —
// budgets update once per exchange, not once per step, so the lock is far
// off the hot path — which is what lets /audit and /metrics scrape the
// ledger while the metasolver writes it.
package audit

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nektarg/internal/monitor"
	"nektarg/internal/telemetry"
)

// Severity mirrors the monitor plane's three-level taxonomy so one
// vocabulary spans both. It is the exported, gob-stable form.
type Severity int

const (
	SevOK       Severity = 0
	SevWarn     Severity = 1
	SevCritical Severity = 2
)

// String renders the severity for JSON and log output.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevCritical:
		return "critical"
	default:
		return "ok"
	}
}

// health converts to the monitor plane's severity levels.
func (s Severity) health() monitor.Severity {
	switch s {
	case SevWarn:
		return monitor.SevWarn
	case SevCritical:
		return monitor.SevCritical
	default:
		return monitor.SevInfo
	}
}

// Tolerance is one budget's acceptance bands. Zero-valued fields inherit the
// class default (see DefaultTolerances); a wholly zero Tolerance means "use
// the class default unchanged".
type Tolerance struct {
	// Warn and Critical band the per-exchange relative defect (residual
	// mode) or the jump relative to the EMA reference (drift mode).
	Warn, Critical float64
	// Alpha is the EMA adaptation rate (default 0.05, the particle-watchdog
	// rate: ~20 exchanges of memory).
	Alpha float64
	// Floor guards the relative division: defects are measured against
	// max(|scale or reference|, Floor). A thermal velocity, a minimum
	// resolvable flow — drift below the floor is noise, not signal.
	Floor float64
	// LeakWarn and LeakCritical band the slow-leak statistic: the |EMA of
	// the signed relative defect| (residual mode) or the EMA reference's
	// excursion from the fixed baseline (drift mode). Zero disables leak
	// detection for the budget (quantities that legitimately evolve).
	LeakWarn, LeakCritical float64
	// LeakMinCount delays leak judgement until the EMA has seen this many
	// observations (default 8): a two-sample "average" is not a trend.
	LeakMinCount int64
}

// merge overlays non-zero fields of o onto t.
func (t Tolerance) merge(o Tolerance) Tolerance {
	if o.Warn != 0 {
		t.Warn = o.Warn
	}
	if o.Critical != 0 {
		t.Critical = o.Critical
	}
	if o.Alpha != 0 {
		t.Alpha = o.Alpha
	}
	if o.Floor != 0 {
		t.Floor = o.Floor
	}
	if o.LeakWarn != 0 {
		t.LeakWarn = o.LeakWarn
	}
	if o.LeakCritical != 0 {
		t.LeakCritical = o.LeakCritical
	}
	if o.LeakMinCount != 0 {
		t.LeakMinCount = o.LeakMinCount
	}
	return t
}

// DefaultTolerances returns the built-in per-class bands, keyed by the
// budget-name prefix before the first ':'. The classes map onto the paper's
// coupling-fidelity surfaces:
//
//	gi.flux      ΓI flux continuity: sent vs applied interface velocities.
//	             Exact-zero expectation; 2% warns, 10% is critical.
//	gi.bytes     ΓI exchange byte reconciliation across the 3-step path
//	             (gather → root exchange → scatter). Any mismatch is
//	             critical — bytes are not statistical.
//	mass.div     3D divergence norm (the projection's mass defect). Step
//	             jumps only; the norm legitimately tracks the flow.
//	energy.kinetic  3D kinetic-energy budget. Step jumps only — a starting
//	             flow's energy grows toward steady state, so a leak band
//	             would false-positive on spin-up.
//	momentum     DPD per-particle momentum magnitude. Step jumps only
//	             (open flux boundaries exchange momentum by design).
//	temperature  DPD kinetic temperature vs the thermostat target. Wide
//	             step bands (small-N fluctuation is O(1/√N)); the leak
//	             band catches slow heating the step bands never see.
//	1d.mass      1D network mass balance: V − ∫Q_in dt + ∫Q_out dt is an
//	             exact invariant of a conservative scheme, including the
//	             windkessel terminal outflow. Leak detection on.
//	q.match      1D↔3D flow-rate mismatch: realized 1D inlet flow vs the
//	             commanded 3D outlet flow.
func DefaultTolerances() map[string]Tolerance {
	return map[string]Tolerance{
		"gi.flux":        {Warn: 0.02, Critical: 0.10, LeakWarn: 0.005, LeakCritical: 0.05},
		"gi.bytes":       {Warn: 1e-12, Critical: 1e-9},
		"mass.div":       {Warn: 0.5, Critical: 2.0},
		"energy.kinetic": {Warn: 0.5, Critical: 2.0},
		"momentum":       {Warn: 1.0, Critical: 4.0},
		"temperature":    {Warn: 1.5, Critical: 5.0, LeakWarn: 0.75, LeakCritical: 2.5},
		"1d.mass":        {Warn: 0.05, Critical: 0.25, LeakWarn: 0.02, LeakCritical: 0.1},
		"q.match":        {Warn: 0.05, Critical: 0.25, LeakWarn: 0.02, LeakCritical: 0.1},
	}
}

// baseTolerance is the fallback for budgets outside the known classes.
var baseTolerance = Tolerance{
	Warn: 0.1, Critical: 0.5,
	Alpha: 0.05, Floor: 1e-12,
	LeakMinCount: 8,
}

// Violation is one severity transition on one budget, delivered to
// OnViolation hooks (the journal bridge) at the moment it latches.
type Violation struct {
	Budget   string   `json:"budget"`
	Kind     string   `json:"kind"` // "step" or "leak"
	Severity Severity `json:"severity"`
	Value    float64  `json:"value"` // the offending statistic
	Limit    float64  `json:"limit"` // the band it crossed
	Exchange int64    `json:"exchange"`
	Message  string   `json:"message"`
}

// budget is one tracked quantity's live state. The serializable subset is
// mirrored by BudgetState (state.go); everything else is configuration.
type budget struct {
	name string
	tol  Tolerance
	mode string // "residual" or "drift"

	count      int64
	rel        float64 // last relative defect (residual) or jump (drift)
	ema        float64 // EMA of the signed relative defect (residual mode)
	ref        float64 // EMA reference (drift mode)
	baseline   float64 // first observation (drift mode)
	seeded     bool
	stepSev    Severity
	leakSev    Severity
	violations int64
}

// worst returns the budget's latched severity across both taxonomies.
func (b *budget) worst() Severity {
	if b.leakSev > b.stepSev {
		return b.leakSev
	}
	return b.stepSev
}

// Options configures a Ledger.
type Options struct {
	// Rec is the ledger's telemetry recorder (track "audit" by convention);
	// nil disables the audit.* gauges. The Ledger serializes its own calls,
	// satisfying the recorder's single-owner contract.
	Rec *telemetry.Recorder
	// Watch is the health-plane bundle audit transitions mirror into (as
	// "audit-ledger" events, so criticals trip /healthz and fire the flight
	// recorder through the existing OnTrip wiring); nil disables.
	Watch *monitor.Watchdogs
	// Tolerance overlays the global default bands (zero fields inherit).
	Tolerance Tolerance
	// PerClass overlays per-class bands, keyed like DefaultTolerances.
	PerClass map[string]Tolerance
	// PerBudget overlays exact-name bands (strongest override).
	PerBudget map[string]Tolerance
}

// Ledger is a per-rank conservation ledger. Create with New; nil is the
// disabled ledger (every method a nil-check no-op).
type Ledger struct {
	mu      sync.Mutex
	base    Tolerance
	classes map[string]Tolerance
	exact   map[string]Tolerance
	budgets map[string]*budget
	order   []string // insertion order; sorted views sort copies

	rec   *telemetry.Recorder
	watch *monitor.Watchdogs
	hooks []func(Violation)

	exchanges                              int64
	bytesSent, bytesReceived, bytesApplied int64
}

// New builds a ledger with the merged tolerance tables.
func New(opts Options) *Ledger {
	l := &Ledger{
		base:    baseTolerance.merge(opts.Tolerance),
		classes: map[string]Tolerance{},
		exact:   map[string]Tolerance{},
		budgets: map[string]*budget{},
		rec:     opts.Rec,
		watch:   opts.Watch,
	}
	for class, t := range DefaultTolerances() {
		l.classes[class] = t
	}
	for class, t := range opts.PerClass {
		l.classes[class] = l.classes[class].merge(t)
	}
	for name, t := range opts.PerBudget {
		l.exact[name] = t
	}
	return l
}

// OnViolation registers a hook invoked (under the ledger lock, keep it
// cheap) for every severity transition — the journal bridge subscribes here.
func (l *Ledger) OnViolation(fn func(Violation)) {
	if l == nil || fn == nil {
		return
	}
	l.mu.Lock()
	l.hooks = append(l.hooks, fn)
	l.mu.Unlock()
}

// SetTolerance overrides the bands for one exact budget name. Call before
// the budget's first observation.
func (l *Ledger) SetTolerance(budget string, t Tolerance) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.exact[budget] = t
	if b, ok := l.budgets[budget]; ok {
		b.tol = l.toleranceForLocked(budget)
	}
	l.mu.Unlock()
}

// classOf extracts the tolerance-class prefix of a budget name.
func classOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == ':' {
			return name[:i]
		}
	}
	return name
}

// toleranceForLocked resolves base → class → exact for one budget name.
func (l *Ledger) toleranceForLocked(name string) Tolerance {
	t := l.base
	if ct, ok := l.classes[classOf(name)]; ok {
		t = t.merge(ct)
	}
	if et, ok := l.exact[name]; ok {
		t = t.merge(et)
	}
	return t
}

// get returns (creating if needed) the named budget. Caller holds the lock.
func (l *Ledger) get(name, mode string) *budget {
	b, ok := l.budgets[name]
	if !ok {
		b = &budget{name: name, tol: l.toleranceForLocked(name), mode: mode}
		l.budgets[name] = b
		l.order = append(l.order, name)
	}
	return b
}

// ObserveResidual feeds one observation of a defect with exact zero
// expectation, measured against a characteristic scale: the step statistic
// is defect / max(|scale|, floor), the leak statistic is its signed EMA.
func (l *Ledger) ObserveResidual(name string, defect, scale float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.get(name, "residual")
	rel := defect / math.Max(math.Abs(scale), b.tol.Floor)
	b.count++
	b.rel = rel
	if b.count == 1 {
		b.ema = rel
	} else {
		b.ema += b.tol.Alpha * (rel - b.ema)
	}
	l.judgeStep(b, math.Abs(rel))
	if b.count >= b.tol.LeakMinCount {
		l.judgeLeak(b, math.Abs(b.ema))
	}
	l.gauge(b)
}

// ObserveDrift feeds one observation of a quantity with no exact target.
// The first call seeds the EMA reference and the fixed baseline; later
// calls judge the jump against the reference (step) and the reference's
// excursion from the baseline (leak), then adapt the reference.
func (l *Ledger) ObserveDrift(name string, value float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.get(name, "drift")
	b.count++
	if !b.seeded {
		b.seeded = true
		b.ref = value
		b.baseline = value
		b.rel = 0
		l.gauge(b)
		return
	}
	rel := (value - b.ref) / math.Max(math.Abs(b.ref), b.tol.Floor)
	b.rel = rel
	l.judgeStep(b, math.Abs(rel))
	b.ref += b.tol.Alpha * (value - b.ref)
	b.ema = (b.ref - b.baseline) / math.Max(math.Abs(b.baseline), b.tol.Floor)
	if b.count >= b.tol.LeakMinCount {
		l.judgeLeak(b, math.Abs(b.ema))
	}
	l.gauge(b)
}

// CountExchange reconciles the byte legs of one ΓI exchange: payload bytes
// sent by the gather leg, received after the root exchange, and applied by
// the scatter/install leg. The legs must agree exactly — bytes are not
// statistical — so the residual is judged under the gi.bytes bands.
func (l *Ledger) CountExchange(name string, sent, received, applied int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.bytesSent += sent
	l.bytesReceived += received
	l.bytesApplied += applied
	l.mu.Unlock()
	defect := math.Abs(float64(sent-received)) + math.Abs(float64(received-applied))
	l.ObserveResidual("gi.bytes:"+name, defect, float64(sent))
}

// EndExchange stamps the completion of one coupling exchange — the ledger's
// clock, checkpointed so resumed budgets stay aligned with the metasolver.
func (l *Ledger) EndExchange(exchange int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.exchanges = int64(exchange)
	l.mu.Unlock()
}

// judgeStep latches the per-exchange band verdict. Caller holds the lock.
func (l *Ledger) judgeStep(b *budget, v float64) {
	sev := SevOK
	limit := b.tol.Warn
	switch {
	case b.tol.Critical > 0 && v > b.tol.Critical:
		sev, limit = SevCritical, b.tol.Critical
	case b.tol.Warn >= 0 && v > b.tol.Warn:
		sev = SevWarn
	}
	l.transition(b, "step", &b.stepSev, sev, v, limit)
}

// judgeLeak latches the slow-leak verdict. Caller holds the lock. Zero leak
// bands disable the taxonomy for the budget.
func (l *Ledger) judgeLeak(b *budget, v float64) {
	if b.tol.LeakWarn == 0 && b.tol.LeakCritical == 0 {
		return
	}
	sev := SevOK
	limit := b.tol.LeakWarn
	switch {
	case b.tol.LeakCritical > 0 && v > b.tol.LeakCritical:
		sev, limit = SevCritical, b.tol.LeakCritical
	case b.tol.LeakWarn > 0 && v > b.tol.LeakWarn:
		sev = SevWarn
	}
	l.transition(b, "leak", &b.leakSev, sev, v, limit)
}

// transition applies the watchdog latch discipline to one taxonomy slot:
// emit only on change, never descend from critical, recovery emits once.
func (l *Ledger) transition(b *budget, kind string, slot *Severity, sev Severity, v, limit float64) {
	prev := *slot
	if sev == prev || prev == SevCritical {
		return
	}
	*slot = sev
	if sev < prev {
		l.watch.Event(monitor.SevInfo, "audit-ledger",
			fmt.Sprintf("%s: %s recovered (%.3g within %.3g)", b.name, kind, v, limit), v)
		return
	}
	b.violations++
	msg := fmt.Sprintf("%s: %s violation: |%s| %.3g exceeds %s band %.3g",
		b.name, kind, statName(b, kind), v, sev, limit)
	l.watch.Event(sev.health(), "audit-ledger", msg, v)
	viol := Violation{
		Budget: b.name, Kind: kind, Severity: sev,
		Value: v, Limit: limit, Exchange: l.exchanges, Message: msg,
	}
	for _, fn := range l.hooks {
		fn(viol)
	}
}

// statName names the judged statistic for violation messages.
func statName(b *budget, kind string) string {
	if kind == "leak" {
		if b.mode == "drift" {
			return "reference drift"
		}
		return "defect EMA"
	}
	if b.mode == "drift" {
		return "jump"
	}
	return "relative defect"
}

// gauge mirrors the budget's statistics into the telemetry track. Caller
// holds the lock; the recorder is owned by the ledger, so this is the one
// goroutine-at-a-time access the recorder contract requires.
func (l *Ledger) gauge(b *budget) {
	if l.rec == nil {
		return
	}
	l.rec.Gauge("audit."+b.name+".rel", b.rel)
	l.rec.Gauge("audit."+b.name+".ema", b.ema)
	l.rec.Gauge("audit."+b.name+".sev", float64(b.worst()))
}

// BudgetStatus is one budget's scrape-time view (the /audit document).
type BudgetStatus struct {
	Name         string   `json:"name"`
	Mode         string   `json:"mode"`
	Count        int64    `json:"count"`
	Rel          float64  `json:"rel"`
	EMA          float64  `json:"ema"`
	Ref          float64  `json:"ref,omitempty"`
	Baseline     float64  `json:"baseline,omitempty"`
	StepSeverity Severity `json:"-"`
	LeakSeverity Severity `json:"-"`
	StepSev      string   `json:"step_severity"`
	LeakSev      string   `json:"leak_severity"`
	Violations   int64    `json:"violations"`
	Warn         float64  `json:"warn"`
	Critical     float64  `json:"critical"`
}

// Status snapshots every budget, sorted by name, plus the ledger clock and
// byte legs. Safe to call from any goroutine.
func (l *Ledger) Status() StatusReport {
	if l == nil {
		return StatusReport{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := StatusReport{
		Exchanges:     l.exchanges,
		BytesSent:     l.bytesSent,
		BytesReceived: l.bytesReceived,
		BytesApplied:  l.bytesApplied,
	}
	names := append([]string(nil), l.order...)
	sort.Strings(names)
	for _, name := range names {
		b := l.budgets[name]
		rep.Budgets = append(rep.Budgets, BudgetStatus{
			Name: b.name, Mode: b.mode, Count: b.count,
			Rel: b.rel, EMA: b.ema, Ref: b.ref, Baseline: b.baseline,
			StepSeverity: b.stepSev, LeakSeverity: b.leakSev,
			StepSev: b.stepSev.String(), LeakSev: b.leakSev.String(),
			Violations: b.violations,
			Warn:       b.tol.Warn, Critical: b.tol.Critical,
		})
		if w := b.worst(); w > rep.Worst {
			rep.Worst = w
		}
		rep.Violations += b.violations
	}
	return rep
}

// StatusReport is the ledger's full scrape-time view.
type StatusReport struct {
	Exchanges     int64          `json:"exchanges"`
	Worst         Severity       `json:"-"`
	WorstSeverity string         `json:"worst_severity"`
	Violations    int64          `json:"violations"`
	BytesSent     int64          `json:"bytes_sent"`
	BytesReceived int64          `json:"bytes_received"`
	BytesApplied  int64          `json:"bytes_applied"`
	Budgets       []BudgetStatus `json:"budgets"`
}

// Healthy reports whether no budget has latched warn or critical.
func (l *Ledger) Healthy() bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range l.budgets {
		if b.worst() > SevOK {
			return false
		}
	}
	return true
}
