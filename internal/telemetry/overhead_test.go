package telemetry

import (
	"testing"
	"time"
)

// disabledRec is package state so the compiler cannot prove the receiver nil
// and fold the calls away; the benchmarks measure the real nil-check path.
var disabledRec *Recorder

// TestDisabledPathNearZeroCost is the zero-cost-when-disabled guard run by
// scripts/verify.sh: instrumentation on a nil recorder must allocate nothing
// and cost no more than a few nanoseconds per call. The threshold is
// deliberately generous (50 ns/op) so slow CI machines pass while a
// regression to map lookups, allocation or locking still fails loudly —
// the real cost is one nil comparison (<1 ns on any modern core).
func TestDisabledPathNearZeroCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := disabledRec.Begin("stage")
		disabledRec.Gauge("g", 1)
		disabledRec.CountMessage(LevelL4, OpGather, 64)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f objects per op, want 0", allocs)
	}

	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := disabledRec.Begin("stage")
			disabledRec.Gauge("g", 1)
			disabledRec.CountMessage(LevelL4, OpGather, 64)
			sp.End()
		}
	})
	const maxNs = 50.0
	if ns := float64(res.NsPerOp()); ns > maxNs {
		t.Fatalf("disabled instrumentation costs %.1f ns/op, budget %.0f ns/op", ns, maxNs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := disabledRec.Begin("stage")
		sp.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	reg := NewRegistry()
	r := reg.NewRecorder("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := r.Begin("stage")
		sp.End()
	}
}

func BenchmarkDisabledCountMessage(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		disabledRec.CountMessage(LevelL4, OpGather, 64)
	}
}

func BenchmarkEnabledCountMessage(b *testing.B) {
	reg := NewRegistry()
	r := reg.NewRecorder("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.CountMessage(LevelL4, OpGather, 64)
	}
}

func BenchmarkEnabledGauge(b *testing.B) {
	reg := NewRegistry()
	r := reg.NewRecorder("bench")
	r.Gauge("g", 0) // pre-create the series
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Gauge("g", float64(i))
	}
}

func BenchmarkRecordSpanRing(b *testing.B) {
	reg := NewRegistry()
	r := reg.NewRecorder("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordSpan("s", time.Duration(i), time.Microsecond, 0, 0)
	}
}
