package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// ClusterStage is one stage aggregated across tracks/ranks: per-track totals
// summarized as min/mean/max plus the imbalance ratio max/mean — the paper's
// per-stage timing-table shape (min/mean/max over 131,072 cores).
type ClusterStage struct {
	Name      string  `json:"name"`
	Count     int64   `json:"count"`       // total occurrences across tracks
	Tracks    int     `json:"tracks"`      // tracks that recorded the stage
	Total     float64 `json:"total_s"`     // summed seconds across tracks
	TotalMin  float64 `json:"min_track_s"` // smallest per-track total
	TotalMean float64 `json:"mean_track_s"`
	TotalMax  float64 `json:"max_track_s"`
	SpanMin   float64 `json:"min_span_s"` // shortest single occurrence
	SpanMax   float64 `json:"max_span_s"` // longest single occurrence
	Imbalance float64 `json:"imbalance"`  // TotalMax / TotalMean (1 = perfectly balanced)
	Hops      int64   `json:"hops"`       // hop-clock advance attributed to the stage
}

// ClusterGauge is one gauge aggregated across tracks.
type ClusterGauge struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
}

// ClusterStats is the cluster-wide (or registry-wide) aggregate: the per-step
// table the metasolver reports and the telemetry.json summary serializes.
type ClusterStats struct {
	Tracks  int            `json:"tracks"`
	Stages  []ClusterStage `json:"stages"`
	Gauges  []ClusterGauge `json:"gauges"`
	Traffic TrafficMatrix  `json:"traffic"`
}

// Aggregate combines per-track snapshots into cluster statistics. It is the
// serial counterpart of the mpi tree-Reduce reporter (mpi.ReduceTelemetry),
// and the merge rule is identical so both paths produce the same tables.
func Aggregate(snaps []*Snapshot) *ClusterStats {
	cs := &ClusterStats{}
	type acc struct {
		stats  StageStats
		tracks int
		min    float64 // min per-track total
		max    float64 // max per-track total
		sum    float64 // sum of per-track totals
	}
	stages := map[string]*acc{}
	gauges := map[string]*GaugeStats{}
	gaugeCounts := map[string]int{}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		cs.Tracks++
		cs.Traffic.add(&s.Traffic)
		for name, st := range s.Stages {
			a := stages[name]
			if a == nil {
				a = &acc{min: st.Total, max: st.Total}
				stages[name] = a
			} else {
				if st.Total < a.min {
					a.min = st.Total
				}
				if st.Total > a.max {
					a.max = st.Total
				}
			}
			a.stats.fold(st)
			a.tracks++
			a.sum += st.Total
		}
		for name, g := range s.Gauges {
			t := gauges[name]
			if t == nil {
				gauges[name] = &GaugeStats{Count: g.Count, Sum: g.Sum, Min: g.Min, Max: g.Max, Last: g.Last}
			} else {
				t.Count += g.Count
				t.Sum += g.Sum
				if g.Min < t.Min {
					t.Min = g.Min
				}
				if g.Max > t.Max {
					t.Max = g.Max
				}
				t.Last = g.Last
			}
			gaugeCounts[name]++
		}
	}
	for name, a := range stages {
		mean := a.sum / float64(a.tracks)
		imb := 1.0
		if mean > 0 {
			imb = a.max / mean
		}
		cs.Stages = append(cs.Stages, ClusterStage{
			Name:      name,
			Count:     a.stats.Count,
			Tracks:    a.tracks,
			Total:     a.sum,
			TotalMin:  a.min,
			TotalMean: mean,
			TotalMax:  a.max,
			SpanMin:   a.stats.Min,
			SpanMax:   a.stats.Max,
			Imbalance: imb,
			Hops:      a.stats.Hops,
		})
	}
	sort.Slice(cs.Stages, func(i, j int) bool { return cs.Stages[i].Name < cs.Stages[j].Name })
	for name, g := range gauges {
		cs.Gauges = append(cs.Gauges, ClusterGauge{
			Name: name, Count: g.Count, Mean: g.Mean(), Min: g.Min, Max: g.Max, Sum: g.Sum,
		})
	}
	sort.Slice(cs.Gauges, func(i, j int) bool { return cs.Gauges[i].Name < cs.Gauges[j].Name })
	return cs
}

// AggregateRecorders snapshots and aggregates a registry's recorders.
func AggregateRecorders(recs []*Recorder) *ClusterStats {
	snaps := make([]*Snapshot, 0, len(recs))
	for _, r := range recs {
		if s := r.Snapshot(); s != nil {
			snaps = append(snaps, s)
		}
	}
	return Aggregate(snaps)
}

// Stage returns the named stage, or nil.
func (cs *ClusterStats) Stage(name string) *ClusterStage {
	for i := range cs.Stages {
		if cs.Stages[i].Name == name {
			return &cs.Stages[i]
		}
	}
	return nil
}

// Gauge returns the named gauge aggregate, or nil.
func (cs *ClusterStats) Gauge(name string) *ClusterGauge {
	for i := range cs.Gauges {
		if cs.Gauges[i].Name == name {
			return &cs.Gauges[i]
		}
	}
	return nil
}

// CouplingFraction returns total(couplingStage)/total(totalStage): the
// paper's coupling-overhead metric ("the MCI overhead stays below 2-3% of
// the step time"). Returns 0 when either stage is absent or empty.
func (cs *ClusterStats) CouplingFraction(couplingStage, totalStage string) float64 {
	c := cs.Stage(couplingStage)
	t := cs.Stage(totalStage)
	if c == nil || t == nil || t.Total <= 0 {
		return 0
	}
	return c.Total / t.Total
}

// FormatStageTable renders the per-stage timing table: count, per-occurrence
// mean, per-track min/mean/max totals and the imbalance ratio.
func (cs *ClusterStats) FormatStageTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %7s %10s %10s %10s %10s %7s %6s\n",
		"stage", "count", "per-call", "min/track", "mean/track", "max/track", "imbal", "hops")
	for _, s := range cs.Stages {
		perCall := 0.0
		if s.Count > 0 {
			perCall = s.Total / float64(s.Count)
		}
		fmt.Fprintf(&b, "%-26s %7d %10s %10s %10s %10s %6.2fx %6d\n",
			s.Name, s.Count, fmtDur(perCall), fmtDur(s.TotalMin), fmtDur(s.TotalMean), fmtDur(s.TotalMax), s.Imbalance, s.Hops)
	}
	return b.String()
}

// FormatTrafficTable renders the nonzero cells of the traffic matrix grouped
// by communicator level — the MCI 3-step exchange accounting.
func (cs *ClusterStats) FormatTrafficTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %10s %14s\n", "level", "op", "msgs", "bytes")
	for l := Level(0); l < NumLevels; l++ {
		for op := Op(0); op < NumOps; op++ {
			t := cs.Traffic[l][op]
			if t.Msgs == 0 && t.Bytes == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-8s %-10s %10d %14d\n", l, op, t.Msgs, t.Bytes)
		}
	}
	return b.String()
}

// FormatGaugeTable renders the gauge aggregates.
func (cs *ClusterStats) FormatGaugeTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %8s %12s %12s %12s %12s\n", "gauge", "count", "mean", "min", "max", "last-sum")
	for _, g := range cs.Gauges {
		fmt.Fprintf(&b, "%-26s %8d %12.4g %12.4g %12.4g %12.4g\n", g.Name, g.Count, g.Mean, g.Min, g.Max, g.Sum)
	}
	return b.String()
}

// fmtDur renders seconds with an adaptive unit.
func fmtDur(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-6:
		return fmt.Sprintf("%.0fns", s*1e9)
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}
