package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// traceEvent is one Chrome trace_event entry. Complete events ("X") carry ts
// and dur in microseconds; metadata events ("M") name the tracks. The format
// is consumed by chrome://tracing and Perfetto's legacy importer.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of the trace_event spec.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// spanCategory derives the Chrome "cat" from a span name's dotted prefix
// ("ns.pressure" -> "ns"), so Perfetto can filter per subsystem.
func spanCategory(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// TraceMeta identifies the process a Chrome trace was exported from. The
// trace-merge pass (internal/fleet) relies on it to label stitched timelines
// "rank/incarnation" and to scope hop-clock ordering constraints to one world
// incarnation (hop clocks restart from zero when a world is redialed).
type TraceMeta struct {
	Rank        int    // world rank the spans belong to
	Incarnation int    // world incarnation the spans were recorded under
	Transport   string // transport kind ("local", "tcp", ...)
}

// WriteChromeTrace serializes every recorder's buffered spans as Chrome
// trace_event JSON: one process, one thread row per track (rank / patch /
// region), complete "X" events with hop-clock deltas in args. Load the file
// in chrome://tracing or https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, recs []*Recorder) error {
	return WriteChromeTraceTagged(w, recs, nil)
}

// WriteChromeTraceTagged is WriteChromeTrace plus the cross-process stitching
// contract: otherData carries the registry epoch as epoch_unix_ns (the wall
// clock instant span ts 0 corresponds to) and, when meta is non-nil, the
// rank / incarnation / transport identity; every span with hop-clock data
// additionally carries absolute h0/h1 hop values in args so a merge pass can
// causally order spans from different processes.
func WriteChromeTraceTagged(w io.Writer, recs []*Recorder, meta *TraceMeta) error {
	tf := traceFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"generator": "nektarg telemetry",
			"written":   time.Now().Format(time.RFC3339),
		},
	}
	for _, r := range recs {
		if r == nil {
			continue
		}
		if _, ok := tf.OtherData["epoch_unix_ns"]; !ok {
			tf.OtherData["epoch_unix_ns"] = r.epoch.UnixNano()
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: r.tid,
			Args: map[string]any{"name": r.track},
		}, traceEvent{
			Name: "thread_sort_index", Ph: "M", PID: 0, TID: r.tid,
			Args: map[string]any{"sort_index": r.tid},
		})
		for _, sp := range r.Spans() {
			ev := traceEvent{
				Name: sp.Name,
				Cat:  spanCategory(sp.Name),
				Ph:   "X",
				TS:   float64(sp.Start) / 1e3, // ns -> µs
				Dur:  float64(sp.Dur) / 1e3,
				PID:  0,
				TID:  r.tid,
			}
			if sp.Hops0 != 0 || sp.Hops1 != 0 {
				ev.Args = map[string]any{"h0": sp.Hops0, "h1": sp.Hops1}
				if sp.Hops1 != sp.Hops0 {
					ev.Args["hops"] = sp.Hops1 - sp.Hops0
				}
			}
			tf.TraceEvents = append(tf.TraceEvents, ev)
		}
	}
	if meta != nil {
		tf.OtherData["rank"] = meta.Rank
		tf.OtherData["incarnation"] = meta.Incarnation
		tf.OtherData["transport"] = meta.Transport
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// Summary is the machine-readable telemetry.json artifact: the cluster
// aggregate plus per-track snapshots, stamped with a wall-clock time.
type Summary struct {
	Written string        `json:"written"`
	Cluster *ClusterStats `json:"cluster"`
	Tracks  []*Snapshot   `json:"tracks"`
}

// WriteSummary aggregates the recorders and writes the indented JSON summary.
func WriteSummary(w io.Writer, recs []*Recorder) error {
	snaps := make([]*Snapshot, 0, len(recs))
	for _, r := range recs {
		if s := r.Snapshot(); s != nil {
			snaps = append(snaps, s)
		}
	}
	sum := Summary{
		Written: time.Now().Format(time.RFC3339),
		Cluster: Aggregate(snaps),
		Tracks:  snaps,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}
