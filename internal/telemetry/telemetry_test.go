package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestNilRecorderIsSafeNoOp pins the disabled-sink contract: every method on
// a nil *Recorder (and a nil *Registry) must be callable without panicking.
func TestNilRecorderIsSafeNoOp(t *testing.T) {
	var reg *Registry
	r := reg.NewRecorder("x")
	if r != nil {
		t.Fatal("nil registry must hand out nil recorders")
	}
	if got := reg.Recorders(); got != nil {
		t.Fatalf("nil registry recorders = %v", got)
	}

	sp := r.Begin("stage")
	sp.End()
	r.RecordSpan("stage", 0, time.Second, 0, 1)
	r.CountMessage(LevelL4, OpGather, 128)
	r.Gauge("g", 1)
	r.SetHopClock(func() int { return 7 })
	r.ResetCounters()
	if r.Snapshot() != nil {
		t.Fatal("nil recorder snapshot must be nil")
	}
	if r.Spans() != nil || r.DroppedSpans() != 0 {
		t.Fatal("nil recorder must report no spans")
	}
	if r.Track() != "" || r.TID() != -1 {
		t.Fatal("nil recorder identity must be empty")
	}
	if r.String() != "telemetry: disabled" {
		t.Fatalf("nil recorder String = %q", r.String())
	}
}

func TestSpanAggregatesExact(t *testing.T) {
	reg := NewRegistry()
	r := reg.NewRecorder("t0")
	r.RecordSpan("work", 0, 2*time.Second, 0, 3)
	r.RecordSpan("work", 2*time.Second, 1*time.Second, 3, 5)
	r.RecordSpan("other", 0, 500*time.Millisecond, 0, 0)

	s := r.Snapshot()
	w := s.Stages["work"]
	if w.Count != 2 || math.Abs(w.Total-3) > 1e-12 {
		t.Fatalf("work stats = %+v", w)
	}
	if w.Min != 1 || w.Max != 2 {
		t.Fatalf("work min/max = %v/%v", w.Min, w.Max)
	}
	if w.Hops != 5 {
		t.Fatalf("work hops = %d, want 5", w.Hops)
	}
	if got := s.StageNames(); len(got) != 2 || got[0] != "other" || got[1] != "work" {
		t.Fatalf("stage names = %v", got)
	}
}

func TestLiveSpanFeedsRingAndAggregates(t *testing.T) {
	reg := NewRegistry()
	r := reg.NewRecorder("t0")
	hops := 0
	r.SetHopClock(func() int { return hops })
	sp := r.Begin("phase")
	hops = 4
	sp.End()
	spans := r.Spans()
	if len(spans) != 1 || spans[0].Name != "phase" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Hops0 != 0 || spans[0].Hops1 != 4 {
		t.Fatalf("hop capture = %d..%d", spans[0].Hops0, spans[0].Hops1)
	}
	if st := r.Snapshot().Stages["phase"]; st.Count != 1 || st.Hops != 4 {
		t.Fatalf("aggregate = %+v", st)
	}
}

// TestRingWrapKeepsAggregatesExact pins the two-sink design: the bounded ring
// drops old trace records, but stage aggregates never lose a span.
func TestRingWrapKeepsAggregatesExact(t *testing.T) {
	reg := NewRegistry()
	reg.SetSpanCapacity(4)
	r := reg.NewRecorder("t0")
	for i := 0; i < 10; i++ {
		r.RecordSpan("s", time.Duration(i)*time.Millisecond, time.Millisecond, 0, 0)
	}
	if got := len(r.Spans()); got != 4 {
		t.Fatalf("ring holds %d spans, want 4", got)
	}
	if r.DroppedSpans() != 6 {
		t.Fatalf("dropped = %d, want 6", r.DroppedSpans())
	}
	// Chronological order preserved across the wrap.
	spans := r.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans out of order: %+v", spans)
		}
	}
	if st := r.Snapshot().Stages["s"]; st.Count != 10 {
		t.Fatalf("aggregate count %d survived wrap, want 10", st.Count)
	}
}

func TestGaugeStats(t *testing.T) {
	reg := NewRegistry()
	r := reg.NewRecorder("t0")
	for _, v := range []float64{5, 1, 3} {
		r.Gauge("iters", v)
	}
	g := r.Snapshot().Gauges["iters"]
	if g.Count != 3 || g.Sum != 9 || g.Min != 1 || g.Max != 5 || g.Last != 3 {
		t.Fatalf("gauge = %+v", g)
	}
	if g.Mean() != 3 {
		t.Fatalf("mean = %v", g.Mean())
	}
}

func TestTrafficMatrixCounting(t *testing.T) {
	reg := NewRegistry()
	r := reg.NewRecorder("t0")
	r.CountMessage(LevelL4, OpGather, 100)
	r.CountMessage(LevelL4, OpGather, 50)
	r.CountMessage(LevelWorld, OpCoupling, 640)
	s := r.Snapshot()
	if g := s.Traffic[LevelL4][OpGather]; g.Msgs != 2 || g.Bytes != 150 {
		t.Fatalf("L4 gather = %+v", g)
	}
	if c := s.Traffic[LevelWorld][OpCoupling]; c.Msgs != 1 || c.Bytes != 640 {
		t.Fatalf("world coupling = %+v", c)
	}
	if tot := s.Traffic.Total(); tot.Msgs != 3 || tot.Bytes != 790 {
		t.Fatalf("total = %+v", tot)
	}
	// Out-of-range keys are clamped, not dropped.
	r.CountMessage(NumLevels+3, NumOps+3, 8)
	if got := r.Snapshot().Traffic[LevelOther][OpP2P]; got.Msgs != 1 {
		t.Fatalf("clamped cell = %+v", got)
	}
}

type fakeSizer struct{}

func (fakeSizer) TelemetryBytes() int64 { return 123 }

func TestPayloadBytes(t *testing.T) {
	cases := []struct {
		data any
		want int64
	}{
		{nil, 0},
		{[]float64{1, 2, 3}, 24},
		{[]int{1, 2}, 16},
		{[]int32{1, 2}, 8},
		{[]byte("abcd"), 4},
		{"hello", 5},
		{3.14, 8},
		{42, 8},
		{true, 8},
		{fakeSizer{}, 123},
		{[2]float32{1, 2}, 8}, // reflect fallback: array of 4-byte elems
	}
	for _, c := range cases {
		if got := PayloadBytes(c.data); got != c.want {
			t.Errorf("PayloadBytes(%v) = %d, want %d", c.data, got, c.want)
		}
	}
}

// TestAggregateAndCouplingFraction builds the paper's coupling-overhead
// metric from synthetic spans: two tracks spend 10s each in meta.step, of
// which 0.2s and 0.3s are meta.exchange — coupling fraction 2.5%.
func TestAggregateAndCouplingFraction(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewRecorder("patch:a")
	b := reg.NewRecorder("patch:b")
	a.RecordSpan("meta.step", 0, 10*time.Second, 0, 0)
	a.RecordSpan("meta.exchange", 0, 200*time.Millisecond, 0, 0)
	b.RecordSpan("meta.step", 0, 10*time.Second, 0, 0)
	b.RecordSpan("meta.exchange", 0, 300*time.Millisecond, 0, 0)
	a.Gauge("iters", 10)
	b.Gauge("iters", 20)
	a.CountMessage(LevelWorld, OpCoupling, 64)
	b.CountMessage(LevelWorld, OpCoupling, 64)

	cs := AggregateRecorders(reg.Recorders())
	if cs.Tracks != 2 {
		t.Fatalf("tracks = %d", cs.Tracks)
	}
	if frac := cs.CouplingFraction("meta.exchange", "meta.step"); math.Abs(frac-0.025) > 1e-12 {
		t.Fatalf("coupling fraction = %v, want 0.025", frac)
	}
	st := cs.Stage("meta.exchange")
	if st == nil || st.Count != 2 || st.Tracks != 2 {
		t.Fatalf("exchange stage = %+v", st)
	}
	if math.Abs(st.TotalMin-0.2) > 1e-12 || math.Abs(st.TotalMax-0.3) > 1e-12 {
		t.Fatalf("exchange min/max = %v/%v", st.TotalMin, st.TotalMax)
	}
	if math.Abs(st.Imbalance-0.3/0.25) > 1e-12 {
		t.Fatalf("imbalance = %v, want 1.2", st.Imbalance)
	}
	g := cs.Gauge("iters")
	if g == nil || g.Count != 2 || g.Mean != 15 || g.Min != 10 || g.Max != 20 {
		t.Fatalf("gauge = %+v", g)
	}
	if tr := cs.Traffic[LevelWorld][OpCoupling]; tr.Msgs != 2 || tr.Bytes != 128 {
		t.Fatalf("traffic = %+v", tr)
	}
	// Absent stage names fall back to zero fraction, not NaN/panic.
	if f := cs.CouplingFraction("nope", "meta.step"); f != 0 {
		t.Fatalf("absent stage fraction = %v", f)
	}
	// Formatting smoke tests: tables must render without panicking.
	for _, s := range []string{cs.FormatStageTable(), cs.FormatTrafficTable(), cs.FormatGaugeTable()} {
		if len(s) == 0 {
			t.Fatal("empty table rendering")
		}
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewRecorder("rank0")
	b := reg.NewRecorder("rank1")
	a.RecordSpan("ns.step", 0, time.Millisecond, 0, 2)
	a.RecordSpan("ns.pressure", 100*time.Microsecond, 300*time.Microsecond, 0, 1)
	b.RecordSpan("dpd.step", 0, 2*time.Millisecond, 0, 0)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, reg.Recorders()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var x, m int
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "X":
			x++
		case "M":
			m++
		}
	}
	if x != 3 {
		t.Fatalf("complete events = %d, want 3", x)
	}
	if m < 2 {
		t.Fatalf("metadata events = %d, want >= 2 (one thread_name per track)", m)
	}
	// Spot-check microsecond conversion on the 300µs span.
	found := false
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" && e.Name == "ns.pressure" {
			found = true
			if math.Abs(e.TS-100) > 1e-9 || math.Abs(e.Dur-300) > 1e-9 {
				t.Fatalf("ns.pressure ts/dur = %v/%v µs, want 100/300", e.TS, e.Dur)
			}
		}
	}
	if !found {
		t.Fatal("ns.pressure event missing")
	}
}

func TestWriteSummaryRoundTrips(t *testing.T) {
	reg := NewRegistry()
	r := reg.NewRecorder("rank0")
	r.RecordSpan("s", 0, time.Second, 0, 0)
	r.Gauge("g", 2)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, reg.Recorders()); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Cluster *ClusterStats `json:"cluster"`
		Tracks  []*Snapshot   `json:"tracks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if out.Cluster == nil || out.Cluster.Stage("s") == nil {
		t.Fatalf("cluster stats missing stage: %+v", out.Cluster)
	}
	if len(out.Tracks) != 1 || out.Tracks[0].Track != "rank0" {
		t.Fatalf("tracks = %+v", out.Tracks)
	}
}

func TestResetCounters(t *testing.T) {
	reg := NewRegistry()
	r := reg.NewRecorder("t0")
	r.RecordSpan("s", 0, time.Second, 0, 0)
	r.Gauge("g", 1)
	r.CountMessage(LevelL3, OpBcast, 10)
	r.ResetCounters()
	s := r.Snapshot()
	if len(s.Stages) != 0 || len(s.Gauges) != 0 || s.Traffic.Total().Msgs != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	if len(r.Spans()) != 0 || r.DroppedSpans() != 0 {
		t.Fatal("reset left spans")
	}
}
