// Package telemetry is the per-rank instrumentation layer of the metasolver:
// nestable stage timers (spans) with monotonic clocks and hop-clock capture,
// message/byte counters keyed by communicator level and collective kind, and
// solver-domain gauges (CG iterations, DPD particle turnover). It exists
// because the paper's headline claims are observability claims — MCI coupling
// overhead below ~2-3% of step time, the 3-step gather/root-exchange/scatter
// dominating interface cost, per-stage timing justifying the metasolver
// design — and none of them can be reproduced or regression-tracked without a
// measurement substrate.
//
// # Design
//
//   - A Registry owns one shared epoch and hands out per-track Recorders. A
//     track is one timeline: an mpi rank, a continuum patch, a DPD region, or
//     the metasolver's coupling thread. Each Recorder is single-owner: exactly
//     one goroutine writes it (matching the one-goroutine-per-rank runtime);
//     aggregation happens after the owning goroutines quiesce.
//
//   - Spans are recorded into a bounded ring buffer (for Chrome trace export)
//     and simultaneously folded into exact per-stage aggregates (count, total,
//     min, max) that never suffer ring wrap-around. Span values are plain
//     structs — Begin/End allocate nothing.
//
//   - Traffic counters are a fixed [level][op] matrix of message/byte tallies,
//     bumped by the mpi runtime on every send. Bytes are counted once, at the
//     sending rank, so cluster-wide sums are exact (no double counting).
//
//   - Disabled means nil. Every method on a nil *Recorder is a safe no-op
//     consisting of one pointer comparison, so instrumented hot paths cost
//     nothing when telemetry is off. This contract is pinned by
//     TestDisabledPathNearZeroCost, which `make verify` runs.
package telemetry

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"
)

// Level identifies the MCI communicator level traffic belongs to (§3.1:
// World, topology-oriented L2, task-oriented L3, interface-oriented L4).
type Level uint8

// Communicator levels. LevelOther covers communicators created outside the
// MCI naming scheme.
const (
	LevelWorld Level = iota
	LevelL2
	LevelL3
	LevelL4
	LevelOther
	NumLevels
)

// String returns the level's display name.
func (l Level) String() string {
	switch l {
	case LevelWorld:
		return "World"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelL4:
		return "L4"
	default:
		return "other"
	}
}

// Op identifies the kind of communication a message belongs to: plain
// point-to-point, reserved-band coupling traffic (the MCI root-to-root
// exchange), or one of the collective algorithms.
type Op uint8

// Traffic kinds. OpCoupling is reserved-band point-to-point traffic — the
// step-2 root exchange of the MCI 3-step protocol.
const (
	OpP2P Op = iota
	OpCoupling
	OpBarrier
	OpBcast
	OpGather
	OpScatter
	OpReduce
	OpAllreduce
	OpAllgather
	OpAlltoall
	NumOps
)

// String returns the op's display name.
func (o Op) String() string {
	switch o {
	case OpP2P:
		return "p2p"
	case OpCoupling:
		return "coupling"
	case OpBarrier:
		return "barrier"
	case OpBcast:
		return "bcast"
	case OpGather:
		return "gather"
	case OpScatter:
		return "scatter"
	case OpReduce:
		return "reduce"
	case OpAllreduce:
		return "allreduce"
	case OpAllgather:
		return "allgather"
	case OpAlltoall:
		return "alltoall"
	default:
		return "?"
	}
}

// Traffic tallies messages and payload bytes for one (level, op) cell.
type Traffic struct {
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// TrafficMatrix is the full per-recorder accounting grid.
type TrafficMatrix [NumLevels][NumOps]Traffic

// add accumulates another matrix into this one.
func (m *TrafficMatrix) add(o *TrafficMatrix) {
	for l := range m {
		for op := range m[l] {
			m[l][op].Msgs += o[l][op].Msgs
			m[l][op].Bytes += o[l][op].Bytes
		}
	}
}

// Total sums the whole matrix.
func (m *TrafficMatrix) Total() Traffic {
	var t Traffic
	for l := range m {
		for op := range m[l] {
			t.Msgs += m[l][op].Msgs
			t.Bytes += m[l][op].Bytes
		}
	}
	return t
}

// SpanRecord is one finished span in the ring buffer. Times are nanoseconds
// since the registry epoch, so spans from different recorders of one registry
// share a timeline.
type SpanRecord struct {
	Name       string
	Start, Dur int64 // ns since epoch / ns duration
	Hops0      int   // hop clock at Begin (0 without a hop source)
	Hops1      int   // hop clock at End
}

// StageStats is the exact running aggregate for one span name. It is immune
// to ring-buffer wrap-around: every End folds into it.
type StageStats struct {
	Count int64   `json:"count"`
	Total float64 `json:"total_s"` // seconds
	Min   float64 `json:"min_s"`
	Max   float64 `json:"max_s"`
	Hops  int64   `json:"hops"` // hop-clock advance attributed to the stage
}

// fold merges another aggregate into this one.
func (s *StageStats) fold(o StageStats) {
	if s.Count == 0 {
		*s = o
		return
	}
	if o.Count == 0 {
		return
	}
	s.Count += o.Count
	s.Total += o.Total
	s.Hops += o.Hops
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// GaugeStats summarizes a scalar series (CG iterations per solve, particles
// per step, ...) without storing it.
type GaugeStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
}

// Mean returns Sum/Count (0 when empty).
func (g GaugeStats) Mean() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.Sum / float64(g.Count)
}

func (g *GaugeStats) add(v float64) {
	if g.Count == 0 {
		g.Min, g.Max = v, v
	} else {
		if v < g.Min {
			g.Min = v
		}
		if v > g.Max {
			g.Max = v
		}
	}
	g.Count++
	g.Sum += v
	g.Last = v
}

// DefaultSpanCap is the default ring-buffer capacity per recorder. At ~64
// bytes per record this bounds trace memory to ~2 MiB per track; aggregates
// remain exact past the horizon, only trace detail is dropped.
const DefaultSpanCap = 1 << 15

// Registry owns a shared epoch and the set of recorders of one run. All
// methods are safe for concurrent use; the zero value is not usable — call
// NewRegistry.
type Registry struct {
	mu      sync.Mutex
	epoch   time.Time
	recs    []*Recorder
	spanCap int
}

// NewRegistry creates a registry whose epoch is now.
func NewRegistry() *Registry {
	return &Registry{epoch: time.Now(), spanCap: DefaultSpanCap}
}

// SetSpanCapacity overrides the per-recorder ring capacity for recorders
// created afterwards (minimum 1).
func (g *Registry) SetSpanCapacity(n int) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	g.spanCap = n
	g.mu.Unlock()
}

// NewRecorder creates a recorder on a new track. A nil registry returns a nil
// recorder, which is the disabled sink: every Recorder method tolerates nil,
// so call sites never branch on whether telemetry is on.
func (g *Registry) NewRecorder(track string) *Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	r := &Recorder{
		track: track,
		tid:   len(g.recs),
		epoch: g.epoch,
		spans: make([]SpanRecord, 0, g.spanCap),
		cap:   g.spanCap,
		stage: map[string]*StageStats{},
		gauge: map[string]*GaugeStats{},
	}
	g.recs = append(g.recs, r)
	return r
}

// Recorders returns the registry's recorders in creation order.
func (g *Registry) Recorders() []*Recorder {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]*Recorder(nil), g.recs...)
}

// Epoch returns the registry's shared time origin.
func (g *Registry) Epoch() time.Time { return g.epoch }

// Recorder is one track's telemetry sink. It is single-owner for writes:
// exactly one goroutine may record into it at a time (per-rank usage). Reads
// (Snapshot, Spans) are safe from any goroutine — a light mutex serializes
// them against the owner's writes so the live monitor can scrape a running
// rank without racing it. A nil *Recorder is the disabled sink — every method
// is a no-op costing one nil check, taken before the lock, so the disabled
// path stays lock-free (pinned by TestDisabledPathNearZeroCost).
type Recorder struct {
	track    string
	tid      int
	epoch    time.Time
	hopClock func() int

	mu      sync.Mutex   // guards everything below (writer vs live scrape)
	spans   []SpanRecord // ring once len == cap
	head    int          // next overwrite position when full
	dropped int64
	cap     int

	traffic TrafficMatrix
	stage   map[string]*StageStats
	gauge   map[string]*GaugeStats
}

// Track returns the recorder's track name.
func (r *Recorder) Track() string {
	if r == nil {
		return ""
	}
	return r.track
}

// TID returns the recorder's stable track id (Chrome trace tid).
func (r *Recorder) TID() int {
	if r == nil {
		return -1
	}
	return r.tid
}

// SetHopClock installs a hop-clock source (e.g. an mpi.Comm's Hops method);
// spans then capture critical-path depth alongside wall time.
func (r *Recorder) SetHopClock(fn func() int) {
	if r == nil {
		return
	}
	r.hopClock = fn
}

func (r *Recorder) hops() int {
	if r.hopClock == nil {
		return 0
	}
	return r.hopClock()
}

// Span is an open stage timer. The zero Span (from a nil recorder) is inert.
type Span struct {
	r     *Recorder
	name  string
	start time.Time
	hops0 int
}

// Begin opens a span. On a nil recorder it returns an inert span without
// touching the clock.
func (r *Recorder) Begin(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, name: name, start: time.Now(), hops0: r.hops()}
}

// End closes the span, pushing a trace record and folding the duration into
// the stage aggregate. End on an inert span is a no-op.
func (sp Span) End() {
	r := sp.r
	if r == nil {
		return
	}
	r.endSpan(sp)
}

// endSpan is End's enabled path, kept out of End itself so the nil check
// stays within the inlining budget: the disabled path must compile to an
// inlined nil comparison even with the scrape lock below (the race detector
// charges a full function-entry instrumentation to any out-of-line call,
// which alone would blow the TestDisabledPathNearZeroCost budget).
func (r *Recorder) endSpan(sp Span) {
	now := time.Now()
	dur := now.Sub(sp.start)
	h1 := r.hops()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(SpanRecord{
		Name:  sp.name,
		Start: sp.start.Sub(r.epoch).Nanoseconds(),
		Dur:   dur.Nanoseconds(),
		Hops0: sp.hops0,
		Hops1: h1,
	})
	st := r.stage[sp.name]
	if st == nil {
		st = &StageStats{}
		r.stage[sp.name] = st
	}
	d := dur.Seconds()
	if st.Count == 0 {
		st.Min, st.Max = d, d
	} else {
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Count++
	st.Total += d
	st.Hops += int64(h1 - sp.hops0)
}

// RecordSpan records a fully specified span without consulting the clock —
// the entry point for synthetic spans (tests) and offline import.
func (r *Recorder) RecordSpan(name string, start, dur time.Duration, hops0, hops1 int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.push(SpanRecord{Name: name, Start: start.Nanoseconds(), Dur: dur.Nanoseconds(), Hops0: hops0, Hops1: hops1})
	st := r.stage[name]
	if st == nil {
		st = &StageStats{}
		r.stage[name] = st
	}
	d := dur.Seconds()
	if st.Count == 0 {
		st.Min, st.Max = d, d
	} else {
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Count++
	st.Total += d
	st.Hops += int64(hops1 - hops0)
}

// push appends to the span ring, overwriting the oldest record when full.
func (r *Recorder) push(rec SpanRecord) {
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, rec)
		return
	}
	r.spans[r.head] = rec
	r.head = (r.head + 1) % r.cap
	r.dropped++
}

// Spans returns the buffered span records in chronological order.
func (r *Recorder) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.spans))
	out = append(out, r.spans[r.head:]...)
	out = append(out, r.spans[:r.head]...)
	return out
}

// DroppedSpans reports how many trace records were overwritten by ring
// wrap-around (aggregates are unaffected).
func (r *Recorder) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// CountMessage tallies one sent message of the given size. The mpi runtime
// calls it from Comm.send, so every point-to-point message and every hop of
// every collective is accounted exactly once, at the sender.
func (r *Recorder) CountMessage(level Level, op Op, bytes int64) {
	if r == nil {
		return
	}
	r.countMessage(level, op, bytes)
}

// countMessage is the enabled path (see endSpan for why it is split out).
func (r *Recorder) countMessage(level Level, op Op, bytes int64) {
	if level >= NumLevels {
		level = LevelOther
	}
	if op >= NumOps {
		op = OpP2P
	}
	r.mu.Lock()
	t := &r.traffic[level][op]
	t.Msgs++
	t.Bytes += bytes
	r.mu.Unlock()
}

// Gauge records one sample of a named scalar series.
func (r *Recorder) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.recordGauge(name, v)
}

// recordGauge is the enabled path (see endSpan for why it is split out).
func (r *Recorder) recordGauge(name string, v float64) {
	r.mu.Lock()
	g := r.gauge[name]
	if g == nil {
		g = &GaugeStats{}
		r.gauge[name] = g
	}
	g.add(v)
	r.mu.Unlock()
}

// ResetSpans clears the span ring (trace detail) without touching traffic,
// stage or gauge aggregates. The distributed trace writer calls it at each
// world incarnation boundary so a per-incarnation trace file never re-exports
// spans from an earlier incarnation, whose hop clock restarted from zero and
// would confuse cross-process stitching.
func (r *Recorder) ResetSpans() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = r.spans[:0]
	r.head = 0
}

// ResetCounters zeroes traffic, stage and gauge aggregates and clears the
// span ring; used by tests that want exact deltas around one operation.
func (r *Recorder) ResetCounters() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traffic = TrafficMatrix{}
	r.stage = map[string]*StageStats{}
	r.gauge = map[string]*GaugeStats{}
	r.spans = r.spans[:0]
	r.head = 0
	r.dropped = 0
}

// VisitStages calls fn for every stage aggregate under the recorder's lock
// (values are copies; iteration order is unspecified). It exists for the
// history sampler, which reads every aggregate once per exchange and must
// not pay Snapshot's two map allocations each time. fn must not call back
// into the recorder.
func (r *Recorder) VisitStages(fn func(name string, s StageStats)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, s := range r.stage {
		fn(name, *s)
	}
}

// VisitGauges calls fn for every gauge aggregate under the recorder's lock
// (values are copies; iteration order is unspecified). fn must not call
// back into the recorder.
func (r *Recorder) VisitGauges(fn func(name string, g GaugeStats)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, g := range r.gauge {
		fn(name, *g)
	}
}

// TrafficTotals returns the whole-matrix message/byte totals without
// copying the matrix.
func (r *Recorder) TrafficTotals() Traffic {
	if r == nil {
		return Traffic{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traffic.Total()
}

// Snapshot captures the recorder's aggregates (deep copy, safe to ship
// through the mpi runtime or mutate).
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Track:         r.track,
		Traffic:       r.traffic,
		Stages:        make(map[string]StageStats, len(r.stage)),
		Gauges:        make(map[string]GaugeStats, len(r.gauge)),
		DroppedEvents: r.dropped,
	}
	for k, v := range r.stage {
		s.Stages[k] = *v
	}
	for k, v := range r.gauge {
		s.Gauges[k] = *v
	}
	return s
}

// Snapshot is a recorder's aggregate state at one instant.
type Snapshot struct {
	Track   string                `json:"track"`
	Traffic TrafficMatrix         `json:"traffic"`
	Stages  map[string]StageStats `json:"stages"`
	Gauges  map[string]GaugeStats `json:"gauges"`
	// DroppedEvents counts span records evicted from the trace ring by
	// wrap-around (aggregates are unaffected; only trace detail is lost).
	// Surfaced as nektarg_telemetry_dropped_events_total so a scrape can
	// tell how much of the trace horizon survives.
	DroppedEvents int64 `json:"dropped_events"`
}

// StageNames returns the snapshot's span names, sorted.
func (s *Snapshot) StageNames() []string {
	names := make([]string, 0, len(s.Stages))
	for n := range s.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Sizer lets payload types report their own wire size to PayloadBytes; the
// mpi collectives implement it for their internal bundle types so tree
// gathers and scatters are accounted by actual relayed volume.
type Sizer interface {
	TelemetryBytes() int64
}

// PayloadBytes estimates the wire size of a message payload. Exact for the
// numeric slice payloads the solvers exchange ([]float64, []int, []byte,
// strings) and for types implementing Sizer; other slices and structs fall
// back to reflection (shallow size), and anything else counts as one word.
func PayloadBytes(data any) int64 {
	switch v := data.(type) {
	case nil:
		return 0
	case []float64:
		return int64(8 * len(v))
	case []int:
		return int64(8 * len(v))
	case []int32:
		return int64(4 * len(v))
	case []byte:
		return int64(len(v))
	case string:
		return int64(len(v))
	case float64, int, int64, uint64, bool:
		return 8
	case Sizer:
		return v.TelemetryBytes()
	}
	rv := reflect.ValueOf(data)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		if rv.Len() == 0 {
			return 0
		}
		return int64(rv.Len()) * int64(rv.Type().Elem().Size())
	case reflect.Struct:
		return int64(rv.Type().Size())
	case reflect.Ptr:
		if rv.IsNil() {
			return 0
		}
		return PayloadBytes(rv.Elem().Interface())
	default:
		return 8
	}
}

// String renders a one-line recorder summary (diagnostics).
func (r *Recorder) String() string {
	if r == nil {
		return "telemetry: disabled"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.traffic.Total()
	return fmt.Sprintf("telemetry[%s]: %d stages, %d msgs / %d bytes, %d spans buffered (%d dropped)",
		r.track, len(r.stage), t.Msgs, t.Bytes, len(r.spans), r.dropped)
}
