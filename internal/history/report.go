package history

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// perf-report: diff two runs' history documents (-history-out files, or a
// saved GET /history body) into a per-stage regression table. The currency
// is each series' whole-run mean — the Summary aggregate that never loses
// samples to ring wrap — so the comparison is between runs, not between
// whichever windows happened to survive.
//
// Only timing series (step.seconds and the stage.* seconds) gate the exit
// code: a gauge that moved (more particles, more traffic) is information,
// not automatically a regression, but a stage that got slower is exactly
// what the table exists to catch.

// Row is one series' old-vs-new comparison.
type Row struct {
	Name       string  `json:"name"`
	Kind       Kind    `json:"kind"`
	OldMean    float64 `json:"old_mean"`
	NewMean    float64 `json:"new_mean"`
	Delta      float64 `json:"delta"` // fractional: new/old - 1
	Timing     bool    `json:"timing"`
	Regression bool    `json:"regression"`
}

// Report is the full diff of two history documents.
type Report struct {
	Threshold    float64  `json:"threshold"`
	Rows         []Row    `json:"rows"`
	OldOnly      []string `json:"old_only,omitempty"`
	NewOnly      []string `json:"new_only,omitempty"`
	Regressions  int      `json:"regressions"`
	OldAnomalies int64    `json:"old_anomalies"`
	NewAnomalies int64    `json:"new_anomalies"`
}

// LoadDoc reads one history document from disk.
func LoadDoc(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("history: %s: %w", path, err)
	}
	return &d, nil
}

// isTiming reports whether a series carries seconds (the exit-code-gating
// class).
func isTiming(name string) bool {
	return name == seriesStepSeconds ||
		(strings.HasPrefix(name, "stage.") && strings.HasSuffix(name, ".seconds"))
}

// Compare diffs two documents. A timing series whose mean grew by more than
// threshold (fractional, e.g. 0.25 = +25%) is marked a regression.
func Compare(oldDoc, newDoc *Doc, threshold float64) *Report {
	r := &Report{Threshold: threshold}
	newByName := map[string]SeriesJSON{}
	for _, s := range newDoc.Series {
		newByName[s.Name] = s
	}
	seen := map[string]bool{}
	for _, o := range oldDoc.Series {
		seen[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			r.OldOnly = append(r.OldOnly, o.Name)
			continue
		}
		row := Row{
			Name: o.Name, Kind: o.Kind,
			OldMean: o.Mean, NewMean: n.Mean,
			Timing: isTiming(o.Name),
		}
		if o.Mean > 0 {
			row.Delta = n.Mean/o.Mean - 1
			row.Regression = row.Timing && row.Delta > threshold
		}
		if row.Regression {
			r.Regressions++
		}
		r.Rows = append(r.Rows, row)
	}
	for _, s := range newDoc.Series {
		if !seen[s.Name] {
			r.NewOnly = append(r.NewOnly, s.Name)
		}
	}
	sort.Slice(r.Rows, func(i, j int) bool {
		// Timing rows first (they gate), worst delta on top within a class.
		if r.Rows[i].Timing != r.Rows[j].Timing {
			return r.Rows[i].Timing
		}
		if r.Rows[i].Delta != r.Rows[j].Delta {
			return r.Rows[i].Delta > r.Rows[j].Delta
		}
		return r.Rows[i].Name < r.Rows[j].Name
	})
	sort.Strings(r.OldOnly)
	sort.Strings(r.NewOnly)
	r.OldAnomalies = oldDoc.AnomalyTotal
	r.NewAnomalies = newDoc.AnomalyTotal
	return r
}

// WriteText renders the regression table.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-52s %-15s %14s %14s %8s\n", "series (mean per sample)", "kind", "old", "new", "delta")
	for _, row := range r.Rows {
		mark := ""
		if row.Regression {
			mark = "  << REGRESSION"
		}
		delta := "n/a"
		if row.OldMean > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*row.Delta)
		}
		fmt.Fprintf(w, "%-52s %-15s %14.6g %14.6g %8s%s\n",
			row.Name, row.Kind, row.OldMean, row.NewMean, delta, mark)
	}
	for _, n := range r.OldOnly {
		fmt.Fprintf(w, "%-52s (only in old run)\n", n)
	}
	for _, n := range r.NewOnly {
		fmt.Fprintf(w, "%-52s (only in new run)\n", n)
	}
	fmt.Fprintf(w, "\nanomalies: old %d, new %d\n", r.OldAnomalies, r.NewAnomalies)
	if r.Regressions > 0 {
		fmt.Fprintf(w, "%d timing regression(s) beyond +%.0f%%\n", r.Regressions, 100*r.Threshold)
	} else {
		fmt.Fprintln(w, "no timing regressions")
	}
}
