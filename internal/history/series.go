package history

// One Series is the bounded time-series of a single scalar signal. Three
// storage layers keep memory constant no matter how long the run is:
//
//	raw ring    — the last RawCap samples, full resolution
//	tier rings  — streamed downsamples: tier i folds TierFactor^(i+1)
//	              consecutive raw samples into one Bin carrying the min/max
//	              envelope, sum and count of the window, into its own
//	              fixed-capacity ring
//	summary     — exact running aggregate over the whole run (never wraps)
//
// Each tier consumes the raw sample stream independently, so a Bin's
// envelope is exactly the min/max of the raw samples it covers — wrap-around
// of the raw ring cannot corrupt older tiers. With the defaults (raw 1024,
// two tiers of 1024 bins at factors 16 and 256) one series spans the last
// 1024 samples raw, the last ~16k at 16× and the last ~262k at 256×; with a
// stride of 4 that covers a 10⁶-step run in ~112 KiB per series.

// Point is one raw sample: the exchange index it was taken at and the value.
type Point struct {
	Step int64   `json:"step"`
	V    float64 `json:"v"`
}

// Bin is one downsampled window: the covered exchange range and the
// envelope/aggregate of the raw samples inside it.
type Bin struct {
	Step0 int64   `json:"step0"`
	Step1 int64   `json:"step1"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
}

// fold merges one raw sample into the bin.
func (b *Bin) fold(step int64, v float64) {
	if b.Count == 0 {
		b.Step0, b.Min, b.Max = step, v, v
	} else {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.Step1 = step
	b.Count++
	b.Sum += v
}

// Summary is the exact whole-run aggregate of a series (the perf-report
// currency: it never loses samples to ring wrap).
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Last  float64 `json:"last"`
}

// Mean returns Sum/Count (0 when empty).
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

func (s *Summary) add(v float64) {
	if s.Count == 0 {
		s.Min, s.Max = v, v
	} else {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Count++
	s.Sum += v
	s.Last = v
}

// tier is one downsample level: an accumulator bin filling toward `factor`
// raw samples plus a ring of completed bins.
type tier struct {
	factor int // raw samples per completed bin
	cap    int
	bins   []Bin
	head   int // next overwrite position once len == cap
	acc    Bin
}

func (t *tier) observe(step int64, v float64) {
	t.acc.fold(step, v)
	if int(t.acc.Count) >= t.factor {
		t.push(t.acc)
		t.acc = Bin{}
	}
}

func (t *tier) push(b Bin) {
	if len(t.bins) < t.cap {
		t.bins = append(t.bins, b)
		return
	}
	t.bins[t.head] = b
	t.head = (t.head + 1) % t.cap
}

// ordered returns the completed bins in chronological order.
func (t *tier) ordered() []Bin {
	out := make([]Bin, 0, len(t.bins))
	out = append(out, t.bins[t.head:]...)
	out = append(out, t.bins[:t.head]...)
	return out
}

// Series is one signal's bounded history plus its anomaly baseline. All
// access is serialized by the owning Plane's mutex.
type Series struct {
	name string
	kind Kind

	sum   Summary
	raw   []Point
	head  int
	cap   int
	tiers []*tier

	// Cumulative-input bookkeeping for observeCum (stage totals, traffic
	// byte counters, GC totals): the series stores per-sample deltas, and
	// the first observation only seeds the reference.
	prevCum float64
	hasPrev bool

	det detector
}

func newSeries(name string, kind Kind, o Options) *Series {
	s := &Series{name: name, kind: kind, cap: o.RawCap}
	f := o.TierFactor
	for i := 0; i < o.Tiers; i++ {
		s.tiers = append(s.tiers, &tier{factor: f, cap: o.TierCap})
		f *= o.TierFactor
	}
	rel, abs := kind.floors()
	s.det = detector{
		alpha: o.Alpha, warmup: o.Warmup, sustain: o.Sustain, zmax: o.Z,
		relFloor: rel, absFloor: abs,
	}
	return s
}

// observe records one sample and runs the detector (for alarmable kinds).
// It reports whether a sustained excursion completed on this sample.
func (s *Series) observe(step int64, v float64) (fired bool, a Anomaly) {
	s.sum.add(v)
	s.pushRaw(Point{Step: step, V: v})
	for _, t := range s.tiers {
		t.observe(step, v)
	}
	if s.kind == KindOther {
		return false, Anomaly{}
	}
	fire, z, baseline := s.det.observe(v)
	if !fire {
		return false, Anomaly{}
	}
	return true, Anomaly{
		Kind: s.kind, Series: s.name, Step: step,
		Value: v, Baseline: baseline, Z: z, Sustained: s.det.sustain,
	}
}

// observeCum converts a monotone cumulative counter into the per-sample
// delta series. The first call seeds the reference; a counter that moved
// backwards (restore, counter reset) re-seeds without recording a bogus
// negative sample.
func (s *Series) observeCum(step int64, cum float64) (fired bool, a Anomaly) {
	if !s.hasPrev || cum < s.prevCum {
		s.prevCum, s.hasPrev = cum, true
		return false, Anomaly{}
	}
	d := cum - s.prevCum
	s.prevCum = cum
	return s.observe(step, d)
}

func (s *Series) pushRaw(p Point) {
	if len(s.raw) < s.cap {
		s.raw = append(s.raw, p)
		return
	}
	s.raw[s.head] = p
	s.head = (s.head + 1) % s.cap
}

// points returns the raw ring in chronological order.
func (s *Series) points() []Point {
	out := make([]Point, 0, len(s.raw))
	out = append(out, s.raw[s.head:]...)
	out = append(out, s.raw[:s.head]...)
	return out
}
