// Plane state capture/restore. History is part of the resumable state for
// the same reason the audit ledger is: the baselines ARE the memory. A
// resumed run that re-seeded its EWMA baselines from mid-run values would
// declare the post-restart level "normal" and a regression that began
// before the checkpoint would vanish from the books; and the series rings
// are the only record of how the run got to where it is. State round-trips
// exactly (float64 fields are copied, never recomputed).
package history

import "sort"

// SeriesState is the serializable form of one series.
type SeriesState struct {
	Name    string
	Kind    Kind
	Summary Summary
	Raw     []Point // chronological
	Tiers   []TierState
	PrevCum float64
	HasPrev bool
	Det     DetectorState
}

// TierState is one downsample tier: completed bins (chronological) plus the
// in-flight accumulator.
type TierState struct {
	Factor int
	Bins   []Bin
	Acc    Bin
}

// DetectorState is the rolling baseline of one series.
type DetectorState struct {
	Mean, Dev float64
	N, Streak int
	Fired     int64
}

// State is the gob-serializable plane snapshot stored in checkpoint.Coupled
// (format v4).
type State struct {
	Samples  int64
	LastStep int64
	// AnomalyTotals is indexed by Kind.
	AnomalyTotals []int64
	Anomalies     []Anomaly
	// Series is sorted by name so two captures of equal planes are
	// DeepEqual regardless of observation order.
	Series []SeriesState
}

// CaptureState snapshots the plane for checkpointing. Nil plane → nil state
// (the checkpoint simply omits the history section).
func (p *Plane) CaptureState() *State {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := &State{
		Samples:       p.samples,
		LastStep:      p.lastStep,
		AnomalyTotals: append([]int64(nil), p.anomTotal[:]...),
	}
	// Chronological anomaly log (unwind the ring).
	st.Anomalies = append(st.Anomalies, p.anomalies[p.anomHead:]...)
	st.Anomalies = append(st.Anomalies, p.anomalies[:p.anomHead]...)
	for name, s := range p.series {
		ss := SeriesState{
			Name: name, Kind: s.kind, Summary: s.sum,
			Raw:     s.points(),
			PrevCum: s.prevCum, HasPrev: s.hasPrev,
			Det: DetectorState{
				Mean: s.det.mean, Dev: s.det.dev,
				N: s.det.n, Streak: s.det.streak, Fired: s.det.fired,
			},
		}
		for _, t := range s.tiers {
			ss.Tiers = append(ss.Tiers, TierState{Factor: t.factor, Bins: t.ordered(), Acc: t.acc})
		}
		st.Series = append(st.Series, ss)
	}
	sort.Slice(st.Series, func(i, j int) bool { return st.Series[i].Name < st.Series[j].Name })
	return st
}

// ApplyState overlays a captured snapshot onto the plane, replacing all live
// series — the restore half of the round-trip. Capacities and detection
// thresholds are configuration, not state: restored rings are re-bounded to
// the plane's current Options (keeping the newest entries), and restored
// baselines run under the current α/z/sustain settings. A nil state is a
// no-op (resuming a pre-v4 checkpoint leaves the fresh plane to re-warm
// from the restored physics, the best available behaviour for legacy
// bundles).
func (p *Plane) ApplyState(st *State) {
	if p == nil || st == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.samples = st.Samples
	p.lastStep = st.LastStep
	p.anomTotal = [numKinds]int64{}
	for i, c := range st.AnomalyTotals {
		if i < int(numKinds) {
			p.anomTotal[i] = c
		}
	}
	p.anomalies = append(p.anomalies[:0], st.Anomalies...)
	if len(p.anomalies) > p.o.MaxAnomalies {
		p.anomalies = append([]Anomaly(nil), p.anomalies[len(p.anomalies)-p.o.MaxAnomalies:]...)
	}
	p.anomHead = 0
	p.series = make(map[string]*Series, len(st.Series))
	p.order = p.order[:0]
	for _, ss := range st.Series {
		s := newSeries(ss.Name, ss.Kind, p.o)
		s.sum = ss.Summary
		raw := ss.Raw
		if len(raw) > s.cap {
			raw = raw[len(raw)-s.cap:]
		}
		s.raw = append(s.raw, raw...)
		for i, t := range s.tiers {
			if i >= len(ss.Tiers) {
				break
			}
			bins := ss.Tiers[i].Bins
			if len(bins) > t.cap {
				bins = bins[len(bins)-t.cap:]
			}
			t.bins = append(t.bins, bins...)
			t.acc = ss.Tiers[i].Acc
		}
		s.prevCum, s.hasPrev = ss.PrevCum, ss.HasPrev
		s.det.mean, s.det.dev = ss.Det.Mean, ss.Det.Dev
		s.det.n, s.det.streak, s.det.fired = ss.Det.N, ss.Det.Streak, ss.Det.Fired
		p.series[ss.Name] = s
		p.order = append(p.order, ss.Name)
	}
}
