package history

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"math"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"nektarg/internal/telemetry"
)

// testOptions returns a small, fast configuration for unit tests: tiny rings
// so wrap-around is exercised in a few dozen samples, an early-armed detector,
// and no runtime series so the stored series set is exactly what the test fed.
func testOptions() Options {
	return Options{
		RawCap: 8, TierFactor: 2, TierCap: 4, Tiers: 2,
		Warmup: 4, Sustain: 3, Z: 4,
		NoRuntime: true,
	}
}

// --- storage invariants -------------------------------------------------

// TestRingBoundsAndOrder: no matter how many samples a series absorbs, the
// raw ring and every tier ring stay at their configured capacities and read
// back in chronological order.
func TestRingBoundsAndOrder(t *testing.T) {
	p := New(testOptions())
	const n = 100
	for i := 1; i <= n; i++ {
		p.Observe("x", int64(i), float64(i))
	}
	s := p.series["x"]
	if len(s.raw) != 8 {
		t.Fatalf("raw ring holds %d points, want cap 8", len(s.raw))
	}
	pts := s.points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Step <= pts[i-1].Step {
			t.Fatalf("raw points out of order at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].Step != n || pts[0].Step != n-7 {
		t.Fatalf("raw window = [%d,%d], want [%d,%d]", pts[0].Step, pts[len(pts)-1].Step, n-7, n)
	}
	for ti, tr := range s.tiers {
		if len(tr.bins) > 4 {
			t.Fatalf("tier %d holds %d bins, want <= cap 4", ti, len(tr.bins))
		}
		bins := tr.ordered()
		for i := 1; i < len(bins); i++ {
			if bins[i].Step0 <= bins[i-1].Step1 {
				t.Fatalf("tier %d bins overlap at %d: %+v", ti, i, bins)
			}
		}
	}
}

// TestTierEnvelopeConservation: every completed bin carries exactly the
// min/max/sum/count of the raw samples in its window — tiers consume the
// sample stream independently, so raw-ring wrap cannot corrupt them.
func TestTierEnvelopeConservation(t *testing.T) {
	o := testOptions()
	o.TierCap = 64 // keep every bin so all windows can be checked
	p := New(o)
	// A deliberately non-monotone pattern so min != first and max != last.
	vals := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0, 9.5, 1.5, 3.5, 8.5, 2.5, 7.5}
	for i, v := range vals {
		p.Observe("x", int64(i+1), v)
	}
	s := p.series["x"]
	// Tier 0 folds TierFactor (=2) raw samples per bin.
	bins := s.tiers[0].ordered()
	if len(bins) != len(vals)/2 {
		t.Fatalf("tier 0 completed %d bins, want %d", len(bins), len(vals)/2)
	}
	for i, b := range bins {
		a, c := vals[2*i], vals[2*i+1]
		wantMin, wantMax := a, c
		if c < a {
			wantMin, wantMax = c, a
		}
		if b.Min != wantMin || b.Max != wantMax || b.Sum != a+c || b.Count != 2 {
			t.Fatalf("tier 0 bin %d = %+v, want min %g max %g sum %g count 2", i, b, wantMin, wantMax, a+c)
		}
		if b.Step0 != int64(2*i+1) || b.Step1 != int64(2*i+2) {
			t.Fatalf("tier 0 bin %d covers [%d,%d], want [%d,%d]", i, b.Step0, b.Step1, 2*i+1, 2*i+2)
		}
	}
	// Tier 1 folds TierFactor^2 (=4) raw samples per bin.
	for i, b := range s.tiers[1].ordered() {
		win := vals[4*i : 4*i+4]
		wantMin, wantMax, wantSum := win[0], win[0], 0.0
		for _, v := range win {
			if v < wantMin {
				wantMin = v
			}
			if v > wantMax {
				wantMax = v
			}
			wantSum += v
		}
		if b.Min != wantMin || b.Max != wantMax || b.Sum != wantSum || b.Count != 4 {
			t.Fatalf("tier 1 bin %d = %+v, want min %g max %g sum %g count 4", i, b, wantMin, wantMax, wantSum)
		}
	}
}

// TestSummaryExactDespiteWrap: the whole-run Summary never loses samples to
// ring wrap — it is the perf-report currency.
func TestSummaryExactDespiteWrap(t *testing.T) {
	p := New(testOptions())
	var sum float64
	const n = 100
	for i := 1; i <= n; i++ {
		p.Observe("x", int64(i), float64(i))
		sum += float64(i)
	}
	s := p.series["x"].sum
	if s.Count != n || s.Sum != sum || s.Min != 1 || s.Max != n || s.Last != n {
		t.Fatalf("summary = %+v, want count %d sum %g min 1 max %d last %d", s, n, sum, n, n)
	}
	if s.Mean() != sum/n {
		t.Fatalf("mean = %g, want %g", s.Mean(), sum/n)
	}
}

// TestCumulativeSeries: ObserveCum stores per-sample deltas, seeds on first
// observation and re-seeds (without a bogus negative sample) when the counter
// moves backwards — the restore/reset case.
func TestCumulativeSeries(t *testing.T) {
	p := New(testOptions())
	p.ObserveCum("c", 1, 100) // seed
	p.ObserveCum("c", 2, 110) // delta 10
	p.ObserveCum("c", 3, 125) // delta 15
	p.ObserveCum("c", 4, 50)  // backwards: re-seed, no sample
	p.ObserveCum("c", 5, 60)  // delta 10
	pts := p.series["c"].points()
	want := []Point{{Step: 2, V: 10}, {Step: 3, V: 15}, {Step: 5, V: 10}}
	if !reflect.DeepEqual(pts, want) {
		t.Fatalf("cumulative deltas = %+v, want %+v", pts, want)
	}
}

// TestMaxSeriesBound: a gauge-namespace explosion is counted, not stored.
func TestMaxSeriesBound(t *testing.T) {
	o := testOptions()
	o.MaxSeries = 2
	p := New(o)
	p.Observe("a", 1, 1)
	p.Observe("b", 1, 1)
	p.Observe("c", 1, 1)
	if len(p.series) != 2 {
		t.Fatalf("stored %d series, want MaxSeries=2", len(p.series))
	}
	if p.overflow != 1 {
		t.Fatalf("overflow = %d, want 1", p.overflow)
	}
}

// --- detector -----------------------------------------------------------

// feed pushes n identical samples starting at *step, advancing it.
func feed(p *Plane, name string, step *int64, v float64, n int) {
	for i := 0; i < n; i++ {
		*step++
		p.Observe(name, *step, v)
	}
}

// TestDetectorWarmupNeverFires: excursions during warm-up must not alarm —
// the opening samples of a run are flow development, not regression.
func TestDetectorWarmupNeverFires(t *testing.T) {
	o := testOptions()
	o.Warmup = 16
	p := New(o)
	// Wild swings, all inside the warm-up window ("solver.iters" classifies
	// as cg-inflation, an alarmable kind).
	for i := int64(1); i <= 15; i++ {
		v := 10.0
		if i%2 == 0 {
			v = 1000
		}
		p.Observe("solver.iters", i, v)
	}
	if n := p.AnomalyTotal(); n != 0 {
		t.Fatalf("warm-up fired %d anomalies, want 0: %+v", n, p.Anomalies())
	}
}

// TestDetectorSustainedStepChangeFiresOnce is the core contract: a step
// change fires exactly one typed anomaly after Sustain consecutive excursion
// samples, then the baseline re-seeds at the new level and the plateau stays
// quiet.
func TestDetectorSustainedStepChangeFiresOnce(t *testing.T) {
	p := New(testOptions()) // warmup 4, sustain 3, z 4
	var step int64
	feed(p, "solver.iters", &step, 10, 8) // stable baseline, armed after 4
	feed(p, "solver.iters", &step, 30, 20)
	anoms := p.Anomalies()
	if len(anoms) != 1 {
		t.Fatalf("step change fired %d anomalies, want exactly 1: %+v", len(anoms), anoms)
	}
	a := anoms[0]
	if a.Kind != KindCGIteration {
		t.Fatalf("anomaly kind = %s, want %s (suffix .iters)", a.Kind, KindCGIteration)
	}
	if a.Series != "solver.iters" || a.Value != 30 || a.Baseline != 10 {
		t.Fatalf("anomaly = %+v, want series solver.iters value 30 baseline 10", a)
	}
	// The streak started on the first 30-sample (step 9) and completed on
	// the third (step 11).
	if a.Step != 11 {
		t.Fatalf("anomaly fired at step %d, want 11 (sustain 3)", a.Step)
	}
	if a.Z <= 4 {
		t.Fatalf("anomaly z = %g, want > 4", a.Z)
	}
	if a.Sustained != 3 {
		t.Fatalf("anomaly sustained = %d, want 3", a.Sustained)
	}
}

// TestDetectorSingleSpikeDoesNotFire: one-sample noise never completes a
// streak, and the suspect sample is not folded into the baseline.
func TestDetectorSingleSpikeDoesNotFire(t *testing.T) {
	p := New(testOptions())
	var step int64
	feed(p, "solver.iters", &step, 10, 8)
	feed(p, "solver.iters", &step, 1000, 1) // spike
	feed(p, "solver.iters", &step, 10, 8)   // back to normal
	if n := p.AnomalyTotal(); n != 0 {
		t.Fatalf("single spike fired %d anomalies, want 0", n)
	}
	// Freeze-during-streak: the spike was judged against the baseline, not
	// absorbed into it.
	if m := p.series["solver.iters"].det.mean; m != 10 {
		t.Fatalf("baseline mean after spike = %g, want 10 (spike must not be absorbed)", m)
	}
}

// TestDetectorFreezesBaselineDuringStreak pins the refinement directly: while
// a streak is building, the suspect samples must not pull the mean up
// underneath the excursion.
func TestDetectorFreezesBaselineDuringStreak(t *testing.T) {
	d := detector{alpha: 0.05, warmup: 4, sustain: 3, zmax: 4, relFloor: 0.10, absFloor: 2}
	for i := 0; i < 8; i++ {
		d.observe(10)
	}
	if d.mean != 10 {
		t.Fatalf("baseline mean = %g, want 10", d.mean)
	}
	for i := 0; i < 2; i++ { // two suspect samples: streak builds, baseline frozen
		fire, _, _ := d.observe(30)
		if fire {
			t.Fatalf("fired on streak sample %d, want fire on the 3rd", i+1)
		}
		if d.mean != 10 || d.dev != 0 {
			t.Fatalf("baseline moved during streak: mean %g dev %g, want 10/0", d.mean, d.dev)
		}
	}
	fire, z, baseline := d.observe(30)
	if !fire || baseline != 10 || z <= 4 {
		t.Fatalf("3rd streak sample: fire=%v z=%g baseline=%g, want fire against baseline 10", fire, z, baseline)
	}
	// Post-fire: re-seeded at the new level, re-warming.
	if d.mean != 30 || d.n != 1 || d.streak != 0 || d.fired != 1 {
		t.Fatalf("post-fire detector = %+v, want re-seed at 30", d)
	}
}

// TestDetectorWarmupTracksRamp: a run that opens with a development ramp must
// arm with its deviation re-shrunk to plateau noise (the warmupAlpha
// refinement) so a later genuine regression is not drowned in ramp error.
func TestDetectorWarmupTracksRamp(t *testing.T) {
	o := testOptions()
	o.Warmup = 16 // the production default: the ramp must fit inside warm-up
	p := New(o)
	var step int64
	// Opening development ramp 2..16, then the plateau. Warm-up spans both,
	// so by arming time the fast warmupAlpha has pulled the mean onto the
	// plateau and re-shrunk the deviation toward plateau noise.
	for v := 2.0; v <= 16; v += 2 {
		step++
		p.Observe("solver.iters", step, v)
	}
	feed(p, "solver.iters", &step, 16, 14)
	if n := p.AnomalyTotal(); n != 0 {
		t.Fatalf("ramp itself fired %d anomalies, want 0", n)
	}
	// A real regression on top of the plateau still fires — the ramp error
	// did not poison the armed baseline's scale.
	feed(p, "solver.iters", &step, 28, 4)
	if n := p.AnomalyTotal(); n != 1 {
		t.Fatalf("post-ramp regression fired %d anomalies, want 1: %+v", n, p.Anomalies())
	}
}

// TestAnomalyLogRing: the retained log is a ring bounded by MaxAnomalies
// while the totals stay exact.
func TestAnomalyLogRing(t *testing.T) {
	o := testOptions()
	o.Warmup = 2
	o.Sustain = 1
	o.MaxAnomalies = 4
	p := New(o)
	var step int64
	feed(p, "solver.iters", &step, 10, 4)
	// Escalating plateaus: each 3× jump fires once (sustain 1), then the
	// baseline re-seeds and re-warms at the new level.
	v := 30.0
	for i := 0; i < 6; i++ {
		feed(p, "solver.iters", &step, v, 1) // fires against the previous plateau
		feed(p, "solver.iters", &step, v, 2) // re-warms at the new one
		v *= 3
	}
	if n := p.AnomalyTotal(); n != 6 {
		t.Fatalf("anomaly total = %d, want 6", n)
	}
	anoms := p.Anomalies()
	if len(anoms) != 4 {
		t.Fatalf("retained log holds %d, want MaxAnomalies=4", len(anoms))
	}
	for i := 1; i < len(anoms); i++ {
		if anoms[i].Step <= anoms[i-1].Step {
			t.Fatalf("anomaly log out of order: %+v", anoms)
		}
	}
}

// --- classification -----------------------------------------------------

func TestClassify(t *testing.T) {
	cases := map[string]Kind{
		"step.seconds":                  KindStepTime,
		"gauge.rank0.pressure.iters":    KindCGIteration,
		"solver.iters":                  KindCGIteration,
		"traffic.rank0.bytes":           KindTraffic,
		"traffic.rank0.msgs":            KindOther,
		"imbalance.ns.step":             KindImbalance,
		"runtime.alloc_bytes":           KindAlloc,
		"runtime.heap_bytes":            KindOther,
		"runtime.gc_pause_ns":           KindOther,
		"gauge.rank0.particles":         KindOther,
		"stage.rank0.ns.step.seconds":   KindOther,
		"stage.rank0.meta.wait.seconds": KindOther,
	}
	for name, want := range cases {
		if got := classify(name); got != want {
			t.Errorf("classify(%q) = %s, want %s", name, got, want)
		}
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != k {
			t.Fatalf("kind %s round-tripped to %s", k, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"no-such-kind"`), &k); err == nil {
		t.Fatal("unknown kind name did not error")
	}
}

// --- sampling -----------------------------------------------------------

// TestSampleExchangeSeries: one full sample derives the documented series
// set from real telemetry recorders — per-stage seconds, gauges, traffic
// counters and the cross-track imbalance ratio.
func TestSampleExchangeSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	r0 := reg.NewRecorder("rank0")
	r1 := reg.NewRecorder("rank1")
	recs := []*telemetry.Recorder{r0, r1}
	p := New(testOptions())

	record := func(d0, d1 time.Duration) {
		r0.RecordSpan("ns.step", 0, d0, 0, 0)
		r1.RecordSpan("ns.step", 0, d1, 0, 0)
		r0.Gauge("cg_iterations", 12)
		r0.CountMessage(telemetry.LevelL4, telemetry.OpCoupling, 4096)
	}
	// Two samples: cumulative series (stage seconds, traffic) seed on the
	// first and carry real deltas from the second; rank1 is the 3× straggler.
	record(100*time.Millisecond, 300*time.Millisecond)
	p.SampleExchange(1, 0.4, recs)
	record(100*time.Millisecond, 300*time.Millisecond)
	p.SampleExchange(2, 0.4, recs)

	doc := p.Doc("", 0, 0)
	got := map[string]SeriesJSON{}
	for _, s := range doc.Series {
		got[s.Name] = s
	}
	for _, want := range []string{
		"step.seconds",
		"stage.rank0.ns.step.seconds", "stage.rank1.ns.step.seconds",
		"gauge.rank0.cg_iterations",
		"traffic.rank0.bytes", "traffic.rank0.msgs",
		"imbalance.ns.step",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("series %q missing from sample (have %v)", want, doc.Series)
		}
	}
	for name := range got {
		if strings.HasPrefix(name, "runtime.") {
			t.Errorf("NoRuntime sample stored runtime series %q", name)
		}
	}
	// Imbalance = max/mean of the per-track stage deltas: 0.3/0.2 = 1.5.
	if imb := got["imbalance.ns.step"]; math.Abs(imb.Last-1.5) > 1e-9 {
		t.Errorf("imbalance.ns.step = %g, want 1.5", imb.Last)
	}
	// Traffic delta of the second sample: 4096 new bytes.
	if tr := got["traffic.rank0.bytes"]; tr.Last != 4096 {
		t.Errorf("traffic.rank0.bytes delta = %g, want 4096", tr.Last)
	}
	if p.Samples() != 2 || doc.Step != 2 {
		t.Errorf("samples=%d step=%d, want 2/2", p.Samples(), doc.Step)
	}
}

// TestSampleExchangeRuntimeSeries: without NoRuntime the Go runtime signals
// are stored too (the /metrics gauges and the KindAlloc detector input).
func TestSampleExchangeRuntimeSeries(t *testing.T) {
	o := testOptions()
	o.NoRuntime = false
	p := New(o)
	p.SampleExchange(1, 0.1, nil)
	doc := p.Doc("runtime.", 0, 0)
	names := map[string]bool{}
	for _, s := range doc.Series {
		names[s.Name] = true
	}
	for _, want := range []string{seriesHeapBytes, seriesAllocRate, seriesGCPause, seriesGoroutines} {
		if !names[want] {
			t.Errorf("runtime series %q missing (have %v)", want, names)
		}
	}
}

// --- document / HTTP bodies ---------------------------------------------

func TestDocTierSelectionAndTruncation(t *testing.T) {
	o := testOptions()
	o.TierCap = 64
	p := New(o)
	for i := 1; i <= 100; i++ {
		p.Observe("x", int64(i), float64(i))
	}

	// tier 0: the raw ring.
	d := p.Doc("", 0, 0)
	if n := len(d.Series[0].Points); n != 8 {
		t.Fatalf("tier 0 served %d points, want 8", n)
	}
	// Explicit tier 1: bins at factor 2.
	d = p.Doc("", 1, 0)
	if s := d.Series[0]; s.Tier != 1 || len(s.Bins) != 50 || len(s.Points) != 0 {
		t.Fatalf("tier 1 served tier=%d bins=%d points=%d, want 1/50/0", s.Tier, len(s.Bins), len(s.Points))
	}
	// Auto tier with a budget: rawest representation fitting maxPoints, then
	// newest-N truncation.
	d = p.Doc("", -1, 4)
	s := d.Series[0]
	if s.Tier != 2 || len(s.Bins) != 4 {
		t.Fatalf("auto tier served tier=%d bins=%d, want tier 2 with 4 bins", s.Tier, len(s.Bins))
	}
	if last := s.Bins[len(s.Bins)-1]; last.Step1 != 100 {
		t.Fatalf("truncation kept oldest bins (last covers to %d), want newest (100)", last.Step1)
	}
	// Auto tier with a budget the raw ring already fits.
	d = p.Doc("", -1, 16)
	if s := d.Series[0]; s.Tier != 0 || len(s.Points) != 8 {
		t.Fatalf("auto tier with slack served tier=%d, want raw", s.Tier)
	}
	// A tier beyond the configuration serves the coarsest.
	d = p.Doc("", 9, 0)
	if s := d.Series[0]; s.Tier != 2 || len(s.Bins) == 0 {
		t.Fatalf("over-deep tier served tier=%d bins=%d, want coarsest (2)", s.Tier, len(s.Bins))
	}
}

func TestDocPrefixFilter(t *testing.T) {
	p := New(testOptions())
	p.Observe("stage.rank0.ns.step.seconds", 1, 0.1)
	p.Observe("gauge.rank0.particles", 1, 400)
	d := p.Doc("stage.", 0, 0)
	if len(d.Series) != 1 || d.Series[0].Name != "stage.rank0.ns.step.seconds" {
		t.Fatalf("prefix filter served %+v, want only the stage series", d.Series)
	}
}

func TestJSONBodies(t *testing.T) {
	p := New(testOptions())
	var step int64
	feed(p, "solver.iters", &step, 10, 8)
	feed(p, "solver.iters", &step, 30, 3) // one anomaly
	hb, err := p.HistoryJSON("", -1, 64)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(hb, &doc); err != nil {
		t.Fatalf("GET /history body is not a Doc: %v\n%s", err, hb)
	}
	if doc.AnomalyTotal != 1 || len(doc.Series) != 1 {
		t.Fatalf("doc = %+v, want 1 series, 1 anomaly", doc)
	}
	ab, err := p.AnomaliesJSON()
	if err != nil {
		t.Fatal(err)
	}
	var anoms struct {
		Total  int64            `json:"total"`
		ByKind map[string]int64 `json:"by_kind"`
	}
	if err := json.Unmarshal(ab, &anoms); err != nil {
		t.Fatalf("GET /anomalies body: %v\n%s", err, ab)
	}
	if anoms.Total != 1 || anoms.ByKind["cg-inflation"] != 1 {
		t.Fatalf("anomalies body = %+v, want total 1, cg-inflation 1", anoms)
	}
}

// --- state round-trip ---------------------------------------------------

// TestStateRoundTrip: capture → gob → apply onto a fresh plane must
// reproduce the state exactly, and — the reason history rides the checkpoint
// at all — the restored baselines must continue *identically*: the same
// future samples produce the same anomalies on both planes.
func TestStateRoundTrip(t *testing.T) {
	o := testOptions()
	a := New(o)
	var step int64
	feed(a, "solver.iters", &step, 10, 8)
	feed(a, "solver.iters", &step, 30, 3) // one fired anomaly in the log
	for i := int64(1); i <= 20; i++ {
		a.Observe("step.seconds", i, 0.1+0.001*float64(i%3))
		a.ObserveCum("traffic.rank0.bytes", i, float64(4096*i))
	}

	st := a.CaptureState()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatalf("state is not gob-serializable: %v", err)
	}
	var decoded State
	if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
		t.Fatal(err)
	}

	b := New(o)
	b.ApplyState(&decoded)
	if got := b.CaptureState(); !reflect.DeepEqual(got, st) {
		t.Fatalf("state did not round-trip:\ngot  %+v\nwant %+v", got, st)
	}

	// Continuation determinism: the regression that started before the
	// checkpoint must complete identically after it. Feed both planes the
	// same post-capture samples.
	cont := func(p *Plane) {
		s := step
		for i := int64(1); i <= 10; i++ {
			p.Observe("solver.iters", s+i, 30) // plateau: quiet (re-seeded at 30)
			p.Observe("step.seconds", 20+i, 0.1)
			p.ObserveCum("traffic.rank0.bytes", 20+i, float64(4096*(20+i)))
		}
		p.Observe("solver.iters", s+11, 90)
		p.Observe("solver.iters", s+12, 90)
		p.Observe("solver.iters", s+13, 90) // second regression fires
	}
	cont(a)
	cont(b)
	if a.AnomalyTotal() != 2 || b.AnomalyTotal() != 2 {
		t.Fatalf("anomaly totals diverged: straight %d, resumed %d, want 2/2", a.AnomalyTotal(), b.AnomalyTotal())
	}
	if got, want := b.CaptureState(), a.CaptureState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed plane diverged from straight run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestApplyStateRebounds: restoring a big capture into a smaller-capacity
// plane keeps the newest entries (capacity is configuration, not state).
func TestApplyStateRebounds(t *testing.T) {
	big := testOptions()
	big.RawCap = 64
	a := New(big)
	for i := 1; i <= 32; i++ {
		a.Observe("x", int64(i), float64(i))
	}
	small := testOptions() // RawCap 8
	b := New(small)
	b.ApplyState(a.CaptureState())
	pts := b.series["x"].points()
	if len(pts) != 8 || pts[0].Step != 25 || pts[7].Step != 32 {
		t.Fatalf("re-bounded ring = %+v, want newest 8 (25..32)", pts)
	}
}

// --- profiling ----------------------------------------------------------

// TestAnomalyTriggersProfileCapture: a fired anomaly auto-captures a pprof
// CPU profile (rate-limited), and the hook sees the final path.
func TestAnomalyTriggersProfileCapture(t *testing.T) {
	dir := t.TempDir()
	o := testOptions()
	o.ProfileDir = dir
	o.ProfileWindow = 50 * time.Millisecond
	o.ProfileMinGap = time.Millisecond
	o.ProfileLimit = 1
	p := New(o)
	var hooked []Anomaly
	p.OnAnomaly(func(a Anomaly) { hooked = append(hooked, a) })

	var step int64
	feed(p, "solver.iters", &step, 10, 8)
	feed(p, "solver.iters", &step, 30, 3)
	anoms := p.Anomalies()
	if len(anoms) != 1 || anoms[0].ProfilePath == "" {
		t.Fatalf("anomaly without profile path: %+v", anoms)
	}
	if len(hooked) != 1 || hooked[0].ProfilePath != anoms[0].ProfilePath {
		t.Fatalf("hook saw %+v, want the anomaly with its final profile path", hooked)
	}
	// The capture window runs in the background; wait for completion.
	deadline := time.Now().Add(5 * time.Second)
	for len(p.ProfilePaths()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("profile capture never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fi, err := os.Stat(p.ProfilePaths()[0])
	if err != nil || fi.Size() == 0 {
		t.Fatalf("captured profile unusable: %v (size %d)", err, fi.Size())
	}

	// A second regression is over the per-run capture budget: the anomaly
	// still fires, without a profile.
	feed(p, "solver.iters", &step, 30, 3) // re-warm at the new level
	feed(p, "solver.iters", &step, 90, 3)
	anoms = p.Anomalies()
	if len(anoms) != 2 {
		t.Fatalf("second regression did not fire: %+v", anoms)
	}
	if anoms[1].ProfilePath != "" {
		t.Fatalf("second anomaly captured past ProfileLimit=1: %+v", anoms[1])
	}
}

// --- disabled path ------------------------------------------------------

// TestNilPlaneDisabled: every method on a nil plane is a safe no-op — the
// disabled contract shared with telemetry, monitor, audit and in-situ.
func TestNilPlaneDisabled(t *testing.T) {
	var p *Plane
	p.Observe("x", 1, 1)
	p.ObserveCum("x", 1, 1)
	p.SampleExchange(1, 0.1, nil)
	p.OnAnomaly(func(Anomaly) {})
	p.ApplyState(&State{Samples: 3})
	if p.Due(0) || p.Stride() != 0 || p.Samples() != 0 || p.AnomalyTotal() != 0 || p.SampleCost() != 0 {
		t.Fatal("nil plane reported non-zero state")
	}
	if p.Doc("", 0, 0) != nil || p.CaptureState() != nil || p.Anomalies() != nil ||
		p.ProfilePaths() != nil || p.Stats() != nil {
		t.Fatal("nil plane returned non-nil data")
	}
	if b, err := p.HistoryJSON("", 0, 0); b != nil || err != nil {
		t.Fatal("nil plane HistoryJSON not nil,nil")
	}
	if b, err := p.AnomaliesJSON(); b != nil || err != nil {
		t.Fatal("nil plane AnomaliesJSON not nil,nil")
	}
}

// TestStride: sampling due-ness honours the configured stride.
func TestStride(t *testing.T) {
	p := New(Options{Stride: 4, NoRuntime: true})
	for e, want := range map[int]bool{4: true, 8: true, 5: false, 7: false} {
		if p.Due(e) != want {
			t.Errorf("Due(%d) = %v, want %v", e, p.Due(e), want)
		}
	}
}

// --- perf-report --------------------------------------------------------

func TestCompareReport(t *testing.T) {
	oldDoc := &Doc{Series: []SeriesJSON{
		{Name: "step.seconds", Kind: KindStepTime, Mean: 0.10},
		{Name: "stage.rank0.ns.step.seconds", Kind: KindOther, Mean: 0.05},
		{Name: "gauge.rank0.particles", Kind: KindOther, Mean: 100},
		{Name: "gauge.rank0.gone", Kind: KindOther, Mean: 1},
	}}
	newDoc := &Doc{AnomalyTotal: 1, Series: []SeriesJSON{
		{Name: "step.seconds", Kind: KindStepTime, Mean: 0.14},              // +40%: regression
		{Name: "stage.rank0.ns.step.seconds", Kind: KindOther, Mean: 0.055}, // +10%: under threshold
		{Name: "gauge.rank0.particles", Kind: KindOther, Mean: 300},         // +200% but not timing
		{Name: "gauge.rank0.fresh", Kind: KindOther, Mean: 2},
	}}
	r := Compare(oldDoc, newDoc, 0.25)
	if r.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only step.seconds gates)", r.Regressions)
	}
	if len(r.Rows) != 3 || r.Rows[0].Name != "step.seconds" || !r.Rows[0].Regression {
		t.Fatalf("rows = %+v, want step.seconds regression ranked first", r.Rows)
	}
	if !reflect.DeepEqual(r.OldOnly, []string{"gauge.rank0.gone"}) ||
		!reflect.DeepEqual(r.NewOnly, []string{"gauge.rank0.fresh"}) {
		t.Fatalf("old/new-only = %v / %v", r.OldOnly, r.NewOnly)
	}
	if r.NewAnomalies != 1 {
		t.Fatalf("new anomalies = %d, want 1", r.NewAnomalies)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"<< REGRESSION", "anomalies: old 0, new 1", "1 timing regression(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

// TestLoadDocRoundTrip: a -history-out file loads back into the same Doc the
// plane rendered.
func TestLoadDocRoundTrip(t *testing.T) {
	p := New(testOptions())
	var step int64
	feed(p, "solver.iters", &step, 10, 6)
	raw, err := p.HistoryJSON("", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/hist.json"
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, p.Doc("", 0, 0)) {
		t.Fatalf("loaded doc diverged:\ngot  %+v\nwant %+v", d, p.Doc("", 0, 0))
	}
	if _, err := LoadDoc(t.TempDir() + "/missing.json"); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestStats: the monitor.Stat bridge exposes the plane's own meters.
func TestStats(t *testing.T) {
	p := New(testOptions())
	var step int64
	feed(p, "solver.iters", &step, 10, 8)
	feed(p, "solver.iters", &step, 30, 3)
	p.SampleExchange(20, 0.1, nil)
	got := map[string]float64{}
	for _, s := range p.Stats() {
		key := s.Name
		for _, l := range s.Labels {
			key += "{" + l[0] + "=" + l[1] + "}"
		}
		got[key] = s.Value
	}
	if got["history_samples_total"] != 1 {
		t.Errorf("history_samples_total = %g, want 1", got["history_samples_total"])
	}
	if got["history_series"] != 2 { // solver.iters + step.seconds
		t.Errorf("history_series = %g, want 2", got["history_series"])
	}
	if got["history_anomalies_total{kind=cg-inflation}"] != 1 {
		t.Errorf("anomaly counter = %g, want 1 (%v)", got["history_anomalies_total{kind=cg-inflation}"], got)
	}
}
