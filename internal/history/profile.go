package history

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// profiler is the anomaly-triggered continuous-profiling half of the plane:
// on a detected regression it opens a pprof CPU profile window so the
// profile of the *slow* code is on disk before anyone has to reproduce the
// slowdown. Capture is rate-limited twice over (a per-run cap and a minimum
// gap) because an anomaly cascade must not turn the run into a permanent
// profiling session, and it is best-effort: Go allows one active CPU
// profile per process, so a run started with -cpuprofile (or a concurrent
// /debug/pprof/profile scrape) simply wins and the capture is skipped.
type profiler struct {
	dir    string
	window time.Duration
	limit  int
	minGap time.Duration

	mu     sync.Mutex
	taken  int
	last   time.Time
	active bool
	done   []string // completed capture paths
}

// capture starts one profile window if the rate limits allow, returning the
// path the profile will land at ("" when suppressed). The window runs on a
// background goroutine; completed() reports finished files.
func (pr *profiler) capture(tag string) string {
	if pr == nil {
		return ""
	}
	pr.mu.Lock()
	now := time.Now()
	if pr.active || pr.taken >= pr.limit || (pr.taken > 0 && now.Sub(pr.last) < pr.minGap) {
		pr.mu.Unlock()
		return ""
	}
	pr.taken++
	pr.last = now
	pr.active = true
	pr.mu.Unlock()

	if err := os.MkdirAll(pr.dir, 0o755); err != nil {
		pr.abort()
		return ""
	}
	path := filepath.Join(pr.dir, fmt.Sprintf("perf-%s.pprof", tag))
	f, err := os.Create(path)
	if err != nil {
		pr.abort()
		return ""
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is already running (-cpuprofile, a live
		// /debug/pprof/profile scrape): theirs wins, ours is skipped.
		f.Close()
		os.Remove(path)
		pr.abort()
		return ""
	}
	go func() {
		time.Sleep(pr.window)
		pprof.StopCPUProfile()
		f.Close()
		pr.mu.Lock()
		pr.active = false
		pr.done = append(pr.done, path)
		pr.mu.Unlock()
	}()
	return path
}

func (pr *profiler) abort() {
	pr.mu.Lock()
	pr.active = false
	pr.mu.Unlock()
}

// completed returns the paths of finished (stopped and closed) captures.
func (pr *profiler) completed() []string {
	if pr == nil {
		return nil
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return append([]string(nil), pr.done...)
}
