// Package history is the performance-history plane of the metasolver: an
// embedded, bounded-memory time-series store sampling every telemetry gauge,
// counter rate and per-stage span timing at a configurable exchange stride,
// with rolling statistical baselines that raise typed performance anomalies
// — step-time regression, CG-iteration inflation, MCI traffic spikes,
// imbalance drift, GC/alloc growth — on sustained z-score excursions.
//
// The paper's argument is a *sustained*-performance argument: a 131,072-core
// coupled run is only as good as its slowest week, and the failure modes
// that matter there (CG iterations inflating as the flow develops, coupling
// traffic creep, a patch slowly becoming the straggler) are invisible to a
// point-in-time /metrics scrape and already gone from a post-hoc trace ring.
// This plane is the layer between those two: cheap enough to sample every
// exchange, bounded enough to run for 10⁶ steps, and statistical enough to
// tell drift from noise.
//
// On anomaly the plane auto-captures a rate-limited pprof CPU profile
// window and fires registered hooks (cmd/nektarg wires those to a flight
// dump with its own budget and a fleet-journal event). Series persist into
// the checkpoint bundle (format v4) so baselines survive kill -9 — a
// regression that started before the checkpoint stays on the books after
// resume, exactly like the audit ledger's budgets.
//
// Disabled means nil, the same contract as every other plane: every method
// on a nil *Plane is a no-op costing one nil comparison, pinned at 0
// allocs/op by TestHistoryDisabledZeroCost in internal/core.
package history

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"nektarg/internal/monitor"
	"nektarg/internal/telemetry"
)

// Well-known series names. Everything else is derived:
//
//	stage.<track>.<name>.seconds  per-sample seconds spent in one span stage
//	gauge.<track>.<name>          latest value of one solver gauge
//	traffic.<track>.bytes|msgs    per-sample coupling-plane traffic
//	imbalance.<stage>             max/mean of per-track stage seconds
const (
	seriesStepSeconds = "step.seconds"
	seriesHeapBytes   = "runtime.heap_bytes"
	seriesAllocRate   = "runtime.alloc_bytes"
	seriesGCPause     = "runtime.gc_pause_ns"
	seriesGoroutines  = "runtime.goroutines"
)

// Options configures a Plane. The zero value selects the defaults listed on
// each field.
type Options struct {
	// Stride samples every Nth exchange (default 1). Raising it trades
	// resolution for horizon: the fixed-capacity rings then cover
	// Stride× more steps.
	Stride int
	// RawCap is the raw ring capacity per series (default 1024).
	RawCap int
	// TierFactor is the downsample factor between tiers (default 16).
	TierFactor int
	// TierCap is the bin-ring capacity per tier (default 1024).
	TierCap int
	// Tiers is how many downsample tiers each series keeps (default 2).
	Tiers int
	// MaxSeries bounds how many distinct series the plane will create
	// (default 512); excess signals are counted, not stored, so a gauge
	// namespace explosion cannot grow memory unboundedly.
	MaxSeries int
	// MaxAnomalies bounds the retained anomaly log (default 256, ring:
	// oldest entries are dropped first; totals stay exact).
	MaxAnomalies int

	// Alpha is the EWMA weight of the baselines (default 0.05 — half-life
	// ~14 samples; drift slower than that is absorbed, faster alarms).
	Alpha float64
	// Warmup is how many samples a baseline needs before it may fire
	// (default 16).
	Warmup int
	// Sustain is how many consecutive above-threshold samples complete an
	// anomaly (default 3 — single-sample noise never fires).
	Sustain int
	// Z is the one-sided z-score threshold (default 4).
	Z float64

	// ProfileDir enables anomaly-triggered pprof CPU profile capture into
	// the given directory ("" disables).
	ProfileDir string
	// ProfileWindow is the capture window length (default 1s).
	ProfileWindow time.Duration
	// ProfileLimit caps auto-captures per run (default 2).
	ProfileLimit int
	// ProfileMinGap is the minimum spacing between captures (default 30s).
	ProfileMinGap time.Duration

	// NoRuntime skips the Go runtime series (heap, alloc rate, GC pause,
	// goroutines); tests that pin exact series sets use it.
	NoRuntime bool
}

func (o Options) withDefaults() Options {
	def := func(p *int, v int) {
		if *p <= 0 {
			*p = v
		}
	}
	def(&o.Stride, 1)
	def(&o.RawCap, 1024)
	def(&o.TierFactor, 16)
	def(&o.TierCap, 1024)
	def(&o.Tiers, 2)
	def(&o.MaxSeries, 512)
	def(&o.MaxAnomalies, 256)
	def(&o.Warmup, 16)
	def(&o.Sustain, 3)
	def(&o.ProfileLimit, 2)
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Z <= 0 {
		o.Z = 4
	}
	if o.ProfileWindow <= 0 {
		o.ProfileWindow = time.Second
	}
	if o.ProfileMinGap <= 0 {
		o.ProfileMinGap = 30 * time.Second
	}
	return o
}

// Plane is the performance-history store of one process. Create with New;
// all methods are safe for concurrent use, and every method on a nil *Plane
// is a no-op (the disabled path).
type Plane struct {
	o    Options
	prof *profiler

	mu        sync.Mutex
	series    map[string]*Series
	order     []string // creation order, for stable exposition
	overflow  int64    // signals refused by MaxSeries
	anomalies []Anomaly
	anomHead  int
	anomTotal [numKinds]int64
	samples   int64
	lastStep  int64
	sampleNs  int64 // cumulative cost of SampleExchange (the <1% budget)

	hookMu sync.Mutex
	hooks  []func(Anomaly)
}

// New builds a plane. Zero-value options select the documented defaults.
func New(opts Options) *Plane {
	o := opts.withDefaults()
	p := &Plane{o: o, series: map[string]*Series{}}
	if o.ProfileDir != "" {
		p.prof = &profiler{
			dir: o.ProfileDir, window: o.ProfileWindow,
			limit: o.ProfileLimit, minGap: o.ProfileMinGap,
		}
	}
	return p
}

// Stride returns the configured sampling stride (0 on a nil plane).
func (p *Plane) Stride() int {
	if p == nil {
		return 0
	}
	return p.o.Stride
}

// Due reports whether the given exchange index is a sampling point. The
// disabled plane is never due — callers can gate the cost of assembling a
// sample (the step timer in core.Metasolver.Advance) on it.
func (p *Plane) Due(exchange int) bool {
	if p == nil {
		return false
	}
	return exchange%p.o.Stride == 0
}

// OnAnomaly registers a hook fired (outside the plane lock) for every
// detected anomaly, after profile capture so a.ProfilePath is final.
func (p *Plane) OnAnomaly(fn func(Anomaly)) {
	if p == nil || fn == nil {
		return
	}
	p.hookMu.Lock()
	p.hooks = append(p.hooks, fn)
	p.hookMu.Unlock()
}

// Observe records one sample of a named series, creating it (typed by name
// classification) on first use. The public seam for signals outside the
// telemetry registry and for tests.
func (p *Plane) Observe(name string, step int64, v float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	var fired []Anomaly
	p.observeLocked(&fired, name, classify(name), step, v, false)
	p.noteStep(step)
	p.mu.Unlock()
	p.finish(fired)
}

// ObserveCum records a monotone cumulative counter; the series stores the
// per-sample delta. First call seeds, backwards movement re-seeds.
func (p *Plane) ObserveCum(name string, step int64, cum float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	var fired []Anomaly
	p.observeLocked(&fired, name, classify(name), step, cum, true)
	p.noteStep(step)
	p.mu.Unlock()
	p.finish(fired)
}

// SampleExchange takes one full sample: the step wall time, every stage
// aggregate, gauge and traffic counter of the given recorders, the derived
// per-stage imbalance ratios and the Go runtime signals. The metasolver
// calls it once per due exchange; stepSeconds is the wall time of the
// exchange being sampled.
func (p *Plane) SampleExchange(step int64, stepSeconds float64, recs []*telemetry.Recorder) {
	if p == nil {
		return
	}
	t0 := time.Now()
	var fired []Anomaly
	p.mu.Lock()
	p.observeLocked(&fired, seriesStepSeconds, KindStepTime, step, stepSeconds, false)

	// Imbalance needs the per-track stage deltas of this sample, so the
	// recorder walk collects them on the way.
	type stageDelta struct {
		track string
		v     float64
	}
	imb := map[string][]stageDelta{}
	for _, r := range recs {
		track := r.Track()
		if track == "" {
			continue
		}
		r.VisitStages(func(name string, s telemetry.StageStats) {
			sn := "stage." + track + "." + name + ".seconds"
			d, ok := p.cumDelta(&fired, sn, KindOther, step, s.Total)
			if ok {
				imb[name] = append(imb[name], stageDelta{track, d})
			}
		})
		r.VisitGauges(func(name string, g telemetry.GaugeStats) {
			gn := "gauge." + track + "." + name
			p.observeLocked(&fired, gn, classify(gn), step, g.Last, false)
		})
		t := r.TrafficTotals()
		p.observeLocked(&fired, "traffic."+track+".bytes", KindTraffic, step, float64(t.Bytes), true)
		p.observeLocked(&fired, "traffic."+track+".msgs", KindOther, step, float64(t.Msgs), true)
	}
	for name, ds := range imb {
		if len(ds) < 2 {
			continue
		}
		var sum, max float64
		for _, d := range ds {
			sum += d.v
			if d.v > max {
				max = d.v
			}
		}
		mean := sum / float64(len(ds))
		if mean > 0 {
			p.observeLocked(&fired, "imbalance."+name, KindImbalance, step, max/mean, false)
		}
	}
	if !p.o.NoRuntime {
		p.sampleRuntimeLocked(&fired, step)
	}
	p.samples++
	p.noteStep(step)
	p.sampleNs += time.Since(t0).Nanoseconds()
	p.mu.Unlock()
	p.finish(fired)
}

// sampleRuntimeLocked folds the Go runtime signals in: live heap, the
// per-sample allocation rate (the KindAlloc detector input), GC pause delta
// and goroutine count.
func (p *Plane) sampleRuntimeLocked(fired *[]Anomaly, step int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.observeLocked(fired, seriesHeapBytes, KindOther, step, float64(ms.HeapAlloc), false)
	p.observeLocked(fired, seriesAllocRate, KindAlloc, step, float64(ms.TotalAlloc), true)
	p.observeLocked(fired, seriesGCPause, KindOther, step, float64(ms.PauseTotalNs), true)
	p.observeLocked(fired, seriesGoroutines, KindOther, step, float64(runtime.NumGoroutine()), false)
}

// observeLocked routes one sample into its series, creating the series on
// first use (subject to MaxSeries). cum selects cumulative-counter
// semantics. Fired anomalies are appended to *fired for post-lock handling.
func (p *Plane) observeLocked(fired *[]Anomaly, name string, kind Kind, step int64, v float64, cum bool) {
	s := p.series[name]
	if s == nil {
		if len(p.series) >= p.o.MaxSeries {
			p.overflow++
			return
		}
		s = newSeries(name, kind, p.o)
		p.series[name] = s
		p.order = append(p.order, name)
	}
	var f bool
	var a Anomaly
	if cum {
		f, a = s.observeCum(step, v)
	} else {
		f, a = s.observe(step, v)
	}
	if f {
		*fired = append(*fired, a)
	}
}

// cumDelta is observeLocked's cumulative variant that also returns the
// delta it recorded (the imbalance computation reuses it). ok is false on
// the seeding sample.
func (p *Plane) cumDelta(fired *[]Anomaly, name string, kind Kind, step int64, cumV float64) (float64, bool) {
	s := p.series[name]
	if s == nil {
		if len(p.series) >= p.o.MaxSeries {
			p.overflow++
			return 0, false
		}
		s = newSeries(name, kind, p.o)
		p.series[name] = s
		p.order = append(p.order, name)
	}
	if !s.hasPrev || cumV < s.prevCum {
		s.prevCum, s.hasPrev = cumV, true
		return 0, false
	}
	d := cumV - s.prevCum
	s.prevCum = cumV
	if f, a := s.observe(step, d); f {
		*fired = append(*fired, a)
	}
	return d, true
}

func (p *Plane) noteStep(step int64) {
	if step > p.lastStep {
		p.lastStep = step
	}
}

// finish runs the anomaly response outside the plane lock: profile capture
// first (so hooks see the final ProfilePath), then the anomaly log, then
// the hooks.
func (p *Plane) finish(fired []Anomaly) {
	if len(fired) == 0 {
		return
	}
	for i := range fired {
		if p.prof != nil {
			fired[i].ProfilePath = p.prof.capture(fmt.Sprintf("%s-%d", fired[i].Kind, fired[i].Step))
		}
	}
	p.mu.Lock()
	for _, a := range fired {
		p.anomTotal[a.Kind]++
		if len(p.anomalies) < p.o.MaxAnomalies {
			p.anomalies = append(p.anomalies, a)
		} else {
			p.anomalies[p.anomHead] = a
			p.anomHead = (p.anomHead + 1) % p.o.MaxAnomalies
		}
	}
	p.mu.Unlock()
	p.hookMu.Lock()
	hooks := make([]func(Anomaly), len(p.hooks))
	copy(hooks, p.hooks)
	p.hookMu.Unlock()
	for _, a := range fired {
		for _, fn := range hooks {
			fn(a)
		}
	}
}

// Anomalies returns the retained anomaly log in chronological order.
func (p *Plane) Anomalies() []Anomaly {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Anomaly, 0, len(p.anomalies))
	out = append(out, p.anomalies[p.anomHead:]...)
	out = append(out, p.anomalies[:p.anomHead]...)
	return out
}

// AnomalyTotal returns how many anomalies have fired over the whole run
// (the retained log may be shorter).
func (p *Plane) AnomalyTotal() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, c := range p.anomTotal {
		n += c
	}
	return n
}

// Samples returns how many full SampleExchange calls have been taken.
func (p *Plane) Samples() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples
}

// SampleCost returns the cumulative wall time spent inside SampleExchange —
// the numerator of the <1%-of-step-time overhead budget the verify gate
// pins.
func (p *Plane) SampleCost() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return time.Duration(p.sampleNs)
}

// ProfilePaths returns the completed auto-captured profile files.
func (p *Plane) ProfilePaths() []string {
	if p == nil {
		return nil
	}
	return p.prof.completed()
}

// Stats is the monitor.Stat bridge: the plane's own meters for /metrics and
// the fleet rollup (cmd/nektarg registers it via Monitor.AddStatSource).
func (p *Plane) Stats() []monitor.Stat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := []monitor.Stat{
		{Name: "history_samples_total", Help: "Performance-history samples taken.", Type: "counter", Value: float64(p.samples)},
		{Name: "history_series", Help: "Distinct performance-history series stored.", Type: "gauge", Value: float64(len(p.series))},
		{Name: "history_sample_seconds_total", Help: "Wall time spent taking history samples.", Type: "counter", Value: float64(p.sampleNs) / 1e9},
	}
	for k := Kind(0); k < numKinds; k++ {
		if k == KindOther {
			continue
		}
		out = append(out, monitor.Stat{
			Name:   "history_anomalies_total",
			Help:   "Performance anomalies detected, by kind.",
			Type:   "counter",
			Labels: [][2]string{{"kind", k.String()}},
			Value:  float64(p.anomTotal[k]),
		})
	}
	return out
}
