package history

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Kind types a performance anomaly — the taxonomy the issue tracker, the
// journal and the fleet rollup all speak. Each kind maps to one class of
// sustained regression the paper's long coupled runs actually exhibited:
// CG iteration counts inflating as the flow develops, coupling traffic
// growth, creeping patch imbalance.
type Kind uint8

// Anomaly kinds. KindOther marks series that are recorded for history and
// perf-report diffing but never feed the detector (particle populations,
// per-stage seconds — quantities whose growth is not by itself a fault).
const (
	// KindStepTime is a step-time regression: the wall time of one full
	// coupling exchange rose and stayed risen.
	KindStepTime Kind = iota
	// KindCGIteration is CG-iteration inflation: a pressure or Helmholtz
	// solve needs sustainedly more iterations than its baseline.
	KindCGIteration
	// KindTraffic is an MCI traffic spike: coupling-plane bytes per
	// exchange grew past the rolling baseline.
	KindTraffic
	// KindImbalance is imbalance drift: the max/mean ratio of per-patch
	// step time crept up — the straggler signature.
	KindImbalance
	// KindAlloc is GC/alloc growth: the per-exchange allocation rate rose,
	// the leading indicator of GC pressure eating step time.
	KindAlloc
	// KindOther marks untyped series: stored, diffed, never alarmed on.
	KindOther
	numKinds
)

var kindNames = [numKinds]string{
	KindStepTime:    "step-time",
	KindCGIteration: "cg-inflation",
	KindTraffic:     "traffic-spike",
	KindImbalance:   "imbalance-drift",
	KindAlloc:       "alloc-growth",
	KindOther:       "untyped",
}

// String returns the kind's wire name (journal events, /anomalies JSON).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "untyped"
}

// MarshalJSON renders the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a wire name back into a kind (perf-report loads the
// documents /history and -history-out emit).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("history: unknown anomaly kind %q", s)
}

// Anomaly is one detected performance regression: which series, at which
// exchange, how far above baseline and for how long. ProfilePath names the
// auto-captured pprof CPU profile when one was taken (rate limiting or a
// concurrent -cpuprofile can suppress it).
type Anomaly struct {
	Kind        Kind    `json:"kind"`
	Series      string  `json:"series"`
	Step        int64   `json:"step"`
	Value       float64 `json:"value"`
	Baseline    float64 `json:"baseline"`
	Z           float64 `json:"z"`
	Sustained   int     `json:"sustained"`
	ProfilePath string  `json:"profile,omitempty"`
}

// detector is the rolling statistical baseline of one series: an EWMA mean
// plus an EWMA absolute deviation (a streaming MAD stand-in; the 1.4826
// factor below rescales it to a σ-equivalent under normality). An anomaly
// fires only on a *sustained* one-sided excursion — `sustain` consecutive
// samples with z above the threshold — never on single-sample noise, and
// never during warm-up. After firing, the baseline re-seeds at the new
// level and re-warms, so a plateau regression fires exactly once while a
// further regression on top of it can fire again.
//
// The EWMA α sets what "drift" means: with the default 0.05 the baseline's
// half-life is ~14 samples, so inflation slower than that is absorbed as
// legitimate flow development and only faster-than-baseline growth alarms.
//
// Two refinements keep that α honest in practice. During warm-up the
// updates run at the faster warmupAlpha: real runs open with a development
// ramp (CG iteration counts settling, caches filling), and tracking it
// slowly would leave the deviation permanently inflated by the ramp error —
// a regression landing after warm-up would then drown in a scale it did not
// cause. And while a streak is building, the suspect samples are NOT folded
// into the baseline: absorbing them would pull the mean up underneath the
// excursion, so a moderate sustained regression could never complete its
// streak.
type detector struct {
	alpha    float64
	warmup   int
	sustain  int
	zmax     float64
	relFloor float64 // deviation floor as a fraction of |mean|
	absFloor float64 // deviation floor in series units

	mean, dev float64
	n         int // samples since (re)seed
	streak    int
	fired     int64
}

// observe folds one sample and reports whether it completes a sustained
// excursion. The returned z and baseline describe the moment of firing.
func (d *detector) observe(v float64) (fire bool, z, baseline float64) {
	if d.n == 0 {
		d.mean, d.dev = v, 0
		d.n = 1
		return false, 0, v
	}
	scale := 1.4826 * d.dev
	if m := d.relFloor * abs(d.mean); m > scale {
		scale = m
	}
	if d.absFloor > scale {
		scale = d.absFloor
	}
	baseline = d.mean
	if scale > 0 {
		z = (v - d.mean) / scale
	}
	if d.n >= d.warmup && scale > 0 && z > d.zmax {
		d.streak++
		if d.streak >= d.sustain {
			d.fired++
			d.mean, d.dev = v, 0
			d.n = 1
			d.streak = 0
			return true, z, baseline
		}
		// Suspect sample, streak building: judged against the frozen
		// baseline, not folded into it.
		return false, z, baseline
	}
	d.streak = 0
	a := d.alpha
	if d.n < d.warmup && a < warmupAlpha {
		a = warmupAlpha
	}
	// Deviation first, against the pre-update mean, then the mean itself —
	// the usual EW update order so dev measures scatter around the baseline
	// the sample was judged against.
	d.dev += a * (abs(v-d.mean) - d.dev)
	d.mean += a * (v - d.mean)
	d.n++
	return false, z, baseline
}

// warmupAlpha is the EWMA weight used while a baseline warms up (half-life
// ~2.4 samples): fast enough that an opening ramp is fully tracked — mean on
// the plateau, deviation re-shrunk to plateau noise — by the time the
// detector arms.
const warmupAlpha = 0.25

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// floors returns the kind-specific deviation floors. They encode what a
// *meaningful* regression is per signal class, so an unperturbed run stays
// quiet: a CG solve must inflate by whole iterations, traffic by real
// kilobytes, step time by a double-digit percentage — not by scheduler
// jitter around a tiny variance.
func (k Kind) floors() (rel, abs float64) {
	switch k {
	case KindStepTime:
		return 0.10, 0
	case KindCGIteration:
		return 0.10, 2
	case KindTraffic:
		return 0.25, 4096
	case KindImbalance:
		return 0.10, 0.1
	case KindAlloc:
		return 0.25, 1 << 20
	default:
		return 0, 0
	}
}

// classify assigns the anomaly kind a series feeds by its name. Everything
// unmatched is KindOther: recorded, never alarmed.
func classify(name string) Kind {
	switch {
	case name == seriesStepSeconds:
		return KindStepTime
	case strings.HasSuffix(name, ".iters"):
		return KindCGIteration
	case strings.HasPrefix(name, "traffic.") && strings.HasSuffix(name, ".bytes"):
		return KindTraffic
	case strings.HasPrefix(name, "imbalance."):
		return KindImbalance
	case name == seriesAllocRate:
		return KindAlloc
	default:
		return KindOther
	}
}
