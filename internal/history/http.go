package history

import (
	"encoding/json"
	"sort"
)

// SeriesJSON is one series as served on GET /history and written by
// -history-out. Exactly one of Points (tier 0, raw) or Bins (downsampled
// tiers) is populated, selected by the requested tier.
type SeriesJSON struct {
	Name    string  `json:"name"`
	Kind    Kind    `json:"kind"`
	Samples int64   `json:"samples"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Last    float64 `json:"last"`
	Tier    int     `json:"tier"`
	Points  []Point `json:"points,omitempty"`
	Bins    []Bin   `json:"bins,omitempty"`
}

// Doc is the complete history document: every series (at one tier each)
// plus the anomaly log. perf-report consumes two of these.
type Doc struct {
	Step          int64        `json:"step"`
	Samples       int64        `json:"samples"`
	Stride        int          `json:"stride"`
	SampleSeconds float64      `json:"sample_seconds_total"`
	Series        []SeriesJSON `json:"series"`
	Anomalies     []Anomaly    `json:"anomalies"`
	AnomalyTotal  int64        `json:"anomaly_total"`
}

// Doc assembles the document. prefix filters series by name prefix (""
// keeps all). tier selects the resolution: 0 is raw, 1.. the downsample
// tiers, and a negative tier auto-selects per series — the rawest tier
// whose retained length fits maxPoints. maxPoints additionally truncates
// to the newest N entries (0 = unlimited). A nil plane returns nil.
func (p *Plane) Doc(prefix string, tier, maxPoints int) *Doc {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	d := &Doc{
		Step: p.lastStep, Samples: p.samples, Stride: p.o.Stride,
		SampleSeconds: float64(p.sampleNs) / 1e9,
	}
	names := append([]string(nil), p.order...)
	sort.Strings(names)
	for _, name := range names {
		if prefix != "" && (len(name) < len(prefix) || name[:len(prefix)] != prefix) {
			continue
		}
		s := p.series[name]
		sj := SeriesJSON{
			Name: name, Kind: s.kind, Samples: s.sum.Count,
			Mean: s.sum.Mean(), Min: s.sum.Min, Max: s.sum.Max, Last: s.sum.Last,
		}
		t := tier
		if t < 0 {
			t = 0
			if maxPoints > 0 && len(s.raw) > maxPoints {
				for i, tr := range s.tiers {
					if len(tr.bins) == 0 {
						// No completed bins yet (early in the run): coarser
						// tiers are emptier still, and newest-N truncated raw
						// beats an empty ring.
						break
					}
					t = i + 1
					if len(tr.bins) <= maxPoints {
						break
					}
				}
			}
		}
		switch {
		case t == 0:
			pts := s.points()
			if maxPoints > 0 && len(pts) > maxPoints {
				pts = pts[len(pts)-maxPoints:]
			}
			sj.Points = pts
		case t-1 < len(s.tiers):
			bins := s.tiers[t-1].ordered()
			if maxPoints > 0 && len(bins) > maxPoints {
				bins = bins[len(bins)-maxPoints:]
			}
			sj.Tier = t
			sj.Bins = bins
		default:
			// Requested tier beyond configuration: serve the coarsest.
			last := len(s.tiers) - 1
			if last >= 0 {
				sj.Tier = last + 1
				sj.Bins = s.tiers[last].ordered()
			}
		}
		d.Series = append(d.Series, sj)
	}
	d.Anomalies = append(d.Anomalies, p.anomalies[p.anomHead:]...)
	d.Anomalies = append(d.Anomalies, p.anomalies[:p.anomHead]...)
	for _, c := range p.anomTotal {
		d.AnomalyTotal += c
	}
	return d
}

// HistoryJSON renders Doc as indented JSON — the monitor's /history handler
// and the fleet publisher call it through the HistorySource interface.
func (p *Plane) HistoryJSON(prefix string, tier, maxPoints int) ([]byte, error) {
	if p == nil {
		return nil, nil
	}
	return json.MarshalIndent(p.Doc(prefix, tier, maxPoints), "", "  ")
}

// AnomaliesJSON renders the anomaly log plus totals (GET /anomalies).
func (p *Plane) AnomaliesJSON() ([]byte, error) {
	if p == nil {
		return nil, nil
	}
	p.mu.Lock()
	anoms := make([]Anomaly, 0, len(p.anomalies))
	anoms = append(anoms, p.anomalies[p.anomHead:]...)
	anoms = append(anoms, p.anomalies[:p.anomHead]...)
	totals := map[string]int64{}
	var total int64
	for k := Kind(0); k < numKinds; k++ {
		if p.anomTotal[k] > 0 {
			totals[k.String()] = p.anomTotal[k]
			total += p.anomTotal[k]
		}
	}
	p.mu.Unlock()
	return json.MarshalIndent(struct {
		Total     int64            `json:"total"`
		ByKind    map[string]int64 `json:"by_kind"`
		Anomalies []Anomaly        `json:"anomalies"`
	}{total, totals, anoms}, "", "  ")
}
