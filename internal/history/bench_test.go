package history

import (
	"testing"
	"time"

	"nektarg/internal/telemetry"
)

// benchRecorders builds a realistic two-track telemetry state: the stage,
// gauge and traffic namespaces one coupled exchange actually produces.
func benchRecorders() []*telemetry.Recorder {
	reg := telemetry.NewRegistry()
	r0 := reg.NewRecorder("rank0")
	r1 := reg.NewRecorder("rank1")
	for _, r := range []*telemetry.Recorder{r0, r1} {
		r.RecordSpan("ns.step", 0, 10*time.Millisecond, 0, 0)
		r.RecordSpan("exchange", 0, 2*time.Millisecond, 0, 0)
		r.Gauge("cg_iterations", 14)
		r.Gauge("particles", 400)
		r.CountMessage(telemetry.LevelL4, telemetry.OpCoupling, 4096)
	}
	return []*telemetry.Recorder{r0, r1}
}

// BenchmarkSampleExchange is the enabled hot path: one full history sample
// per coupled exchange (stride 1), runtime series included — the number the
// <1%-of-step-time overhead budget is about.
func BenchmarkSampleExchange(b *testing.B) {
	p := New(Options{})
	recs := benchRecorders()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SampleExchange(int64(i+1), 0.012, recs)
	}
}

// BenchmarkSampleExchangeNoRuntime isolates the store+detector cost from the
// runtime.ReadMemStats handshake.
func BenchmarkSampleExchangeNoRuntime(b *testing.B) {
	p := New(Options{NoRuntime: true})
	recs := benchRecorders()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SampleExchange(int64(i+1), 0.012, recs)
	}
}

// BenchmarkObserve is the single-series path (Observe from outside the
// telemetry registry).
func BenchmarkObserve(b *testing.B) {
	p := New(Options{NoRuntime: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe("solver.iters", int64(i+1), 14)
	}
}

// BenchmarkHistoryDisabled is the nil-plane path every undecorated run pays:
// it must stay at 0 allocs/op (TestHistoryDisabledZeroCost in internal/core
// pins the same property as a hard test).
func BenchmarkHistoryDisabled(b *testing.B) {
	var p *Plane
	recs := benchRecorders()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Due(i) {
			p.SampleExchange(int64(i+1), 0.012, recs)
		}
	}
}
