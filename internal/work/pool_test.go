package work

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllWorkers(t *testing.T) {
	var p Pool
	defer p.Stop()
	for _, n := range []int{1, 2, 3, 8} {
		var ran [8]int32
		var calls int32
		p.Run(n, func(w int) {
			atomic.AddInt32(&calls, 1)
			atomic.AddInt32(&ran[w], 1)
		})
		if got := int(atomic.LoadInt32(&calls)); got != n {
			t.Fatalf("n=%d: %d calls", n, got)
		}
		for w := 0; w < n; w++ {
			if c := atomic.LoadInt32(&ran[w]); c != 1 {
				t.Fatalf("n=%d: worker %d ran %d times, want 1", n, w, c)
			}
		}
	}
}

func TestPoolWorkerZeroOnCaller(t *testing.T) {
	var p Pool
	defer p.Stop()
	ch := make(chan int, 4)
	p.Run(1, func(w int) { ch <- w })
	if w := <-ch; w != 0 {
		t.Fatalf("n=1 ran worker %d", w)
	}
}

func TestPoolReusableAfterStop(t *testing.T) {
	var p Pool
	var calls int32
	p.Run(4, func(int) { atomic.AddInt32(&calls, 1) })
	p.Stop()
	p.Run(4, func(int) { atomic.AddInt32(&calls, 1) })
	p.Stop()
	if calls != 8 {
		t.Fatalf("calls = %d, want 8", calls)
	}
}

func TestPoolRunZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	var p Pool
	defer p.Stop()
	var sink [4]int
	fn := func(w int) { sink[w]++ } // prebuilt closure, as arena callers do
	p.Run(4, fn)                    // warm up: spawn workers
	allocs := testing.AllocsPerRun(100, func() { p.Run(4, fn) })
	if allocs != 0 {
		t.Fatalf("Pool.Run allocated %.1f allocs/op, want 0", allocs)
	}
	if sink[0] == 0 {
		t.Fatal("worker 0 never ran")
	}
	_ = runtime.NumGoroutine()
}
