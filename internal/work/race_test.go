//go:build race

package work

// raceEnabled reports that the race detector instruments this build; the
// zero-alloc guard skips then (instrumented channel ops allocate).
const raceEnabled = true
