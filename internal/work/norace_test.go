//go:build !race

package work

// raceEnabled is false in uninstrumented builds; see race_test.go.
const raceEnabled = false
