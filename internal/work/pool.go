// Package work provides a persistent fork-join worker pool for the
// solvers' intra-rank parallel loops (SEM operator tiling, DPD force
// strips). The pool exists because those loops sit inside CG iterations and
// velocity-Verlet steps: spawning goroutines per apply would allocate on
// every inner iteration, while parked workers woken over channels keep the
// steady-state step path at zero allocations (the arena contract pinned by
// the AllocsPerRun guards in the verify gate).
//
// Determinism is the caller's job: the pool guarantees only that fn(0..n-1)
// all ran before Run returns. Callers keep results bit-identical across
// worker counts by writing to disjoint, index-addressed output ranges and
// merging in a fixed order afterwards (see nektar3d's element scatter and
// dpd's tile merge).
package work

import "sync"

// Pool runs fork-join parallel sections on persistent worker goroutines.
// The zero value is ready to use; workers are spawned lazily on first use
// and parked on their wake channels between calls. A Pool must not be used
// from multiple goroutines concurrently (each Grid / dpd.System owns one).
type Pool struct {
	mu   sync.Mutex
	wake []chan func(int) // one per spawned worker, worker w reads wake[w-1]
	done []chan struct{}  // worker w signals done[w-1]
}

// Run invokes fn(w) for w in [0, n) concurrently and returns when all calls
// have completed. Worker 0 runs on the calling goroutine, so n <= 1 is a
// plain function call. fn should be a preallocated closure (stored by the
// caller, not rebuilt per call) to keep Run allocation-free in steady state.
func (p *Pool) Run(n int, fn func(worker int)) {
	if n <= 1 {
		fn(0)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.grow(n - 1)
	for w := 1; w < n; w++ {
		p.wake[w-1] <- fn
	}
	fn(0)
	for w := 1; w < n; w++ {
		<-p.done[w-1]
	}
}

// grow ensures at least n parked workers exist. Called with mu held.
func (p *Pool) grow(n int) {
	for len(p.wake) < n {
		w := len(p.wake) + 1 // worker index passed to fn
		c := make(chan func(int), 1)
		d := make(chan struct{}, 1)
		p.wake = append(p.wake, c)
		p.done = append(p.done, d)
		go func() {
			for fn := range c {
				fn(w)
				d <- struct{}{}
			}
		}()
	}
}

// Stop terminates all parked workers. The pool is reusable afterwards
// (workers respawn on the next Run); Stop exists so tests can bound
// goroutine counts.
func (p *Pool) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.wake {
		close(c)
	}
	p.wake = nil
	p.done = nil
}
