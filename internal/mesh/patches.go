package mesh

import "fmt"

// PatchSpec describes one patch Ωj of a multi-patch decomposition: the
// paper's Tables 3-4 use patches of 17,474 tetrahedra connected by
// one-element-wide overlap regions of 1,114 tetrahedra.
type PatchSpec struct {
	Name     string
	Elements int
}

// PatchInterface is one artificial interface between two overlapping
// patches: OverlapElements is the size of the shared one-element-wide
// region, InterfaceFaces the number of triangular faces on the artificial
// inlet/outlet through which the interface condition trace flows.
type PatchInterface struct {
	A, B            int // patch indices
	OverlapElements int
	InterfaceFaces  int
}

// MultiPatchDomain is the loosely coupled decomposition of a large arterial
// domain Ω into patches Ωj (§3.2).
type MultiPatchDomain struct {
	Patches    []PatchSpec
	Interfaces []PatchInterface
	// ExternalInlets/ExternalOutlets count physical boundaries of Ω where
	// patient-specific or RC boundary conditions apply.
	ExternalInlets  int
	ExternalOutlets int
}

// Paper constants for the scaling studies: "Each Ωi is composed of 17,474
// tetrahedral elements, while the one element-wide overlapping regions
// contain 1,114 tetrahedral elements."
const (
	PaperPatchElements   = 17474
	PaperOverlapElements = 1114
)

// ChainDomain builds an np-patch domain coupled in a chain, the layout of the
// weak/strong scaling experiments (a long arterial segment subdivided into
// overlapping patches). Each interior connection adds one artificial
// inlet/outlet pair.
func ChainDomain(np, elementsPerPatch, overlapElements int) *MultiPatchDomain {
	if np < 1 {
		panic(fmt.Sprintf("mesh: ChainDomain needs >= 1 patch, got %d", np))
	}
	d := &MultiPatchDomain{ExternalInlets: 1, ExternalOutlets: 1}
	for i := 0; i < np; i++ {
		d.Patches = append(d.Patches, PatchSpec{
			Name:     fmt.Sprintf("patch%d", i),
			Elements: elementsPerPatch,
		})
	}
	// Faces on an artificial interface: the overlap region is one element
	// wide, so roughly half its elements expose a face on each side.
	faces := overlapElements / 2
	if faces < 1 {
		faces = 1
	}
	for i := 0; i+1 < np; i++ {
		d.Interfaces = append(d.Interfaces, PatchInterface{
			A: i, B: i + 1, OverlapElements: overlapElements, InterfaceFaces: faces,
		})
	}
	return d
}

// CircleOfWillisDomain builds the four-patch decomposition of Figure 1: the
// cranial arterial network subdivided into 4 overlapping patches with 3
// artificial interfaces ("three inlets and three outlets" counted per side =
// six interface surfaces), four physical inlets (two carotids, two
// vertebrals) and multiple physical outlets.
func CircleOfWillisDomain(elementsPerPatch, overlapElements int) *MultiPatchDomain {
	d := &MultiPatchDomain{ExternalInlets: 4, ExternalOutlets: 6}
	names := []string{"rightICA", "leftICA", "basilar", "circleOfWillis"}
	for _, n := range names {
		d.Patches = append(d.Patches, PatchSpec{Name: n, Elements: elementsPerPatch})
	}
	faces := overlapElements / 2
	// The three feeding patches each overlap the central CoW patch.
	for i := 0; i < 3; i++ {
		d.Interfaces = append(d.Interfaces, PatchInterface{
			A: i, B: 3, OverlapElements: overlapElements, InterfaceFaces: faces,
		})
	}
	return d
}

// TotalElements returns the element count over all patches (overlaps counted
// once per owning patch, as in the solver's storage).
func (d *MultiPatchDomain) TotalElements() int {
	var n int
	for _, p := range d.Patches {
		n += p.Elements
	}
	return n
}

// DOF returns the global number of degrees of freedom for polynomial order p
// with nFields coupled fields (3 velocity components + pressure = 4), counted
// as the (p+1)(p+2)(p+3) tensor-product storage per element that NεκTαr's
// collapsed-coordinate expansion allocates — this reproduces the paper's
// numbers (3 patches at P=10 ≈ 0.38 billion DOF).
func (d *MultiPatchDomain) DOF(p, nFields int) float64 {
	perElem := float64((p + 1) * (p + 2) * (p + 3))
	return float64(d.TotalElements()) * perElem * float64(nFields)
}

// InterfacesOf returns the indices of interfaces touching patch i.
func (d *MultiPatchDomain) InterfacesOf(i int) []int {
	var out []int
	for k, f := range d.Interfaces {
		if f.A == i || f.B == i {
			out = append(out, k)
		}
	}
	return out
}

// Validate checks the patch graph for dangling references.
func (d *MultiPatchDomain) Validate() error {
	for k, f := range d.Interfaces {
		if f.A < 0 || f.A >= len(d.Patches) || f.B < 0 || f.B >= len(d.Patches) || f.A == f.B {
			return fmt.Errorf("mesh: interface %d links %d-%d of %d patches", k, f.A, f.B, len(d.Patches))
		}
		if f.OverlapElements < 1 || f.InterfaceFaces < 1 {
			return fmt.Errorf("mesh: interface %d has empty overlap", k)
		}
	}
	return nil
}
