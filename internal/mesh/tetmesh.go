// Package mesh provides the unstructured tetrahedral meshes and multi-patch
// arterial domain descriptions used by the partitioning study (Table 2), the
// multi-patch scaling replays (Tables 3-4) and the coupled aneurysm setup.
// Generators produce box, bent-pipe ("carotid") and aneurysm-carrying domains
// whose element adjacency structure — not patient-specific geometry — is what
// the paper's experiments exercise.
package mesh

import (
	"fmt"
	"math"

	"nektarg/internal/geometry"
)

// TetMesh is an unstructured tetrahedral mesh.
type TetMesh struct {
	Verts []geometry.Vec3
	Tets  [][4]int
}

// NumElements returns the element count.
func (m *TetMesh) NumElements() int { return len(m.Tets) }

// NumVertices returns the vertex count.
func (m *TetMesh) NumVertices() int { return len(m.Verts) }

// TetVolume returns the signed volume of element e.
func (m *TetMesh) TetVolume(e int) float64 {
	t := m.Tets[e]
	a := m.Verts[t[1]].Sub(m.Verts[t[0]])
	b := m.Verts[t[2]].Sub(m.Verts[t[0]])
	c := m.Verts[t[3]].Sub(m.Verts[t[0]])
	return a.Cross(b).Dot(c) / 6
}

// Volume returns the total mesh volume.
func (m *TetMesh) Volume() float64 {
	var v float64
	for e := range m.Tets {
		v += math.Abs(m.TetVolume(e))
	}
	return v
}

// Centroid returns the centroid of element e.
func (m *TetMesh) Centroid(e int) geometry.Vec3 {
	t := m.Tets[e]
	return m.Verts[t[0]].Add(m.Verts[t[1]]).Add(m.Verts[t[2]]).Add(m.Verts[t[3]]).Scale(0.25)
}

// Bounds returns the mesh bounding box.
func (m *TetMesh) Bounds() geometry.AABB {
	return geometry.NewAABB(m.Verts...)
}

// Validate checks structural sanity: index ranges and non-degenerate
// elements.
func (m *TetMesh) Validate() error {
	for e, t := range m.Tets {
		for _, v := range t {
			if v < 0 || v >= len(m.Verts) {
				return fmt.Errorf("mesh: element %d references vertex %d of %d", e, v, len(m.Verts))
			}
		}
		if math.Abs(m.TetVolume(e)) < 1e-300 {
			return fmt.Errorf("mesh: element %d is degenerate", e)
		}
	}
	return nil
}

// BoxTets meshes the box [0,lx]x[0,ly]x[0,lz] with nx x ny x nz cells, each
// split into 5 tetrahedra (alternating parity so faces conform).
func BoxTets(nx, ny, nz int, lx, ly, lz float64) *TetMesh {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("mesh: BoxTets needs positive cells, got %d,%d,%d", nx, ny, nz))
	}
	m := &TetMesh{}
	vid := func(i, j, k int) int { return i + (nx+1)*(j+(ny+1)*k) }
	for k := 0; k <= nz; k++ {
		for j := 0; j <= ny; j++ {
			for i := 0; i <= nx; i++ {
				m.Verts = append(m.Verts, geometry.Vec3{
					X: lx * float64(i) / float64(nx),
					Y: ly * float64(j) / float64(ny),
					Z: lz * float64(k) / float64(nz),
				})
			}
		}
	}
	// Five-tet decomposition of a cube with corner parity flip so shared
	// faces have matching diagonals.
	even := [5][4]int{{0, 1, 3, 5}, {0, 3, 2, 6}, {0, 5, 4, 6}, {3, 5, 6, 7}, {0, 3, 5, 6}}
	odd := [5][4]int{{1, 2, 0, 4}, {1, 4, 5, 7}, {1, 2, 7, 3}, {2, 4, 6, 7}, {1, 2, 4, 7}}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				corners := [8]int{
					vid(i, j, k), vid(i+1, j, k), vid(i, j+1, k), vid(i+1, j+1, k),
					vid(i, j, k+1), vid(i+1, j, k+1), vid(i, j+1, k+1), vid(i+1, j+1, k+1),
				}
				pat := even
				if (i+j+k)%2 == 1 {
					pat = odd
				}
				for _, p := range pat {
					m.Tets = append(m.Tets, [4]int{corners[p[0]], corners[p[1]], corners[p[2]], corners[p[3]]})
				}
			}
		}
	}
	return m
}

// CarotidTets builds the Table 2 workload: a bent-pipe ("carotid-like")
// domain obtained by meshing a slab and bending it along a circular arc with
// a mild stenosis (radius constriction) at mid-length. The adjacency
// structure matches an artery-like unstructured mesh.
func CarotidTets(nAxial, nCirc, nRadial int) *TetMesh {
	m := BoxTets(nAxial, nCirc, nRadial, 1, 1, 1)
	const (
		bend   = math.Pi / 3 // total bend angle
		arcR   = 4.0         // bend radius
		pipeR  = 0.5         // nominal pipe radius
		narrow = 0.35        // stenosis depth
	)
	for i, v := range m.Verts {
		// v.X in [0,1] is the axial coordinate; (v.Y, v.Z) the section.
		s := v.X
		r := pipeR * (1 - narrow*math.Exp(-20*(s-0.5)*(s-0.5)))
		y := (v.Y - 0.5) * 2 * r
		z := (v.Z - 0.5) * 2 * r
		th := bend * s
		m.Verts[i] = geometry.Vec3{
			X: (arcR + y) * math.Sin(th),
			Y: (arcR + y) * math.Cos(th),
			Z: z,
		}
	}
	return m
}

// AneurysmTets builds a vessel segment carrying a saccular aneurysm: a
// straight pipe (meshed as a deformed slab like CarotidTets) whose wall
// bulges into a near-spherical dome around mid-length. The element count and
// adjacency mimic the sac-bearing patch of the paper's Figure 1 domain.
func AneurysmTets(nAxial, nCirc, nRadial int, domeRadius float64) *TetMesh {
	if domeRadius <= 0 {
		panic(fmt.Sprintf("mesh: dome radius %v", domeRadius))
	}
	m := BoxTets(nAxial, nCirc, nRadial, 1, 1, 1)
	const pipeR = 0.5
	for i, v := range m.Verts {
		s := v.X // axial coordinate in [0,1]
		// Radial bulge: the +y side of the wall inflates into a dome
		// centered at s = 0.5.
		bulge := domeRadius * math.Exp(-25*(s-0.5)*(s-0.5))
		y := (v.Y - 0.5) * 2
		z := (v.Z - 0.5) * 2
		r := pipeR * (1 + bulge*math.Max(0, y))
		m.Verts[i] = geometry.Vec3{
			X: 4 * s,
			Y: y * r,
			Z: z * pipeR,
		}
	}
	return m
}

// face is a sorted vertex triple.
type face [3]int

func sortedFace(a, b, c int) face {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return face{a, b, c}
}

var tetFaces = [4][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}

// AdjacencyLevel selects which element-sharing relations count as adjacency
// when building the partitioning graph.
type AdjacencyLevel int

// Adjacency levels. FaceOnly reproduces the paper's strategy (a); FullAdjacency
// (vertex, edge and face sharing, DOF-weighted) is strategy (b).
const (
	FaceOnly AdjacencyLevel = iota
	FullAdjacency
)

// Edge is one weighted adjacency link.
type Edge struct {
	To     int
	Weight float64
}

// Graph is the element-adjacency graph handed to the partitioner.
type Graph struct {
	N   int
	Adj [][]Edge
}

// SharedDOFWeight returns the number of degrees of freedom shared by two
// spectral elements of polynomial order p that have nShared common vertices:
// a shared face carries O(p^2) modes, a shared edge O(p), a shared vertex 1.
// "The weights associated with the links are scaled with respect to the
// number of shared degrees of freedom per link."
func SharedDOFWeight(p, nShared int) float64 {
	switch nShared {
	case 3:
		return float64((p + 1) * (p + 2) / 2)
	case 2:
		return float64(p + 1)
	case 1:
		return 1
	default:
		return 0
	}
}

// AdjacencyGraph builds the weighted element graph at the given level for
// polynomial order p. With FaceOnly, only elements sharing a whole face are
// linked; with FullAdjacency "we provide ... the full adjacency list
// including elements sharing only one vertex".
func (m *TetMesh) AdjacencyGraph(level AdjacencyLevel, p int) *Graph {
	n := len(m.Tets)
	g := &Graph{N: n, Adj: make([][]Edge, n)}

	// Count shared vertices between each element pair via vertex->elements.
	vertElems := make([][]int32, len(m.Verts))
	for e, t := range m.Tets {
		for _, v := range t {
			vertElems[v] = append(vertElems[v], int32(e))
		}
	}
	shared := make(map[[2]int32]int8)
	for _, elems := range vertElems {
		for i := 0; i < len(elems); i++ {
			for j := i + 1; j < len(elems); j++ {
				a, b := elems[i], elems[j]
				if a > b {
					a, b = b, a
				}
				shared[[2]int32{a, b}]++
			}
		}
	}
	for pair, cnt := range shared {
		a, b := int(pair[0]), int(pair[1])
		nShared := int(cnt)
		if level == FaceOnly && nShared < 3 {
			continue
		}
		w := SharedDOFWeight(p, nShared)
		g.Adj[a] = append(g.Adj[a], Edge{To: b, Weight: w})
		g.Adj[b] = append(g.Adj[b], Edge{To: a, Weight: w})
	}
	return g
}

// BoundaryFaces returns the faces belonging to exactly one element (the mesh
// surface).
func (m *TetMesh) BoundaryFaces() [][3]int {
	count := map[face]int{}
	for _, t := range m.Tets {
		for _, f := range tetFaces {
			count[sortedFace(t[f[0]], t[f[1]], t[f[2]])]++
		}
	}
	var out [][3]int
	for f, c := range count {
		if c == 1 {
			out = append(out, [3]int{f[0], f[1], f[2]})
		}
	}
	return out
}
