package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBoxTetsCounts(t *testing.T) {
	m := BoxTets(2, 3, 4, 1, 1, 1)
	if m.NumVertices() != 3*4*5 {
		t.Fatalf("verts = %d", m.NumVertices())
	}
	if m.NumElements() != 5*2*3*4 {
		t.Fatalf("tets = %d", m.NumElements())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBoxTetsVolumeIsExact(t *testing.T) {
	// The 5-tet decomposition must tile the box exactly.
	m := BoxTets(3, 3, 3, 2, 3, 4)
	if v := m.Volume(); math.Abs(v-24) > 1e-10 {
		t.Fatalf("volume = %v want 24", v)
	}
}

func TestBoxTetsConformingFaces(t *testing.T) {
	// Every interior face must be shared by exactly 2 tets; counts of 1 are
	// boundary. Any other count means non-conforming decomposition.
	m := BoxTets(2, 2, 2, 1, 1, 1)
	count := map[face]int{}
	for _, tet := range m.Tets {
		for _, f := range tetFaces {
			count[sortedFace(tet[f[0]], tet[f[1]], tet[f[2]])]++
		}
	}
	for f, c := range count {
		if c != 1 && c != 2 {
			t.Fatalf("face %v shared by %d elements", f, c)
		}
	}
}

func TestBoundaryFacesOfUnitBox(t *testing.T) {
	m := BoxTets(1, 1, 1, 1, 1, 1)
	// One cube of 5 tets: each of the 6 box faces is covered by 2 triangles
	// (4 corner faces + diagonal splits): total boundary triangles = 12.
	bf := m.BoundaryFaces()
	if len(bf) != 12 {
		t.Fatalf("boundary faces = %d", len(bf))
	}
}

func TestCarotidTetsIsValidAndBent(t *testing.T) {
	m := CarotidTets(20, 4, 4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	b := m.Bounds()
	// The bend must spread the domain in both X and Y.
	if b.Size().X < 1 || b.Size().Y < 0.5 {
		t.Fatalf("domain not bent: %+v", b)
	}
}

func TestSharedDOFWeightMonotone(t *testing.T) {
	for p := 2; p <= 12; p++ {
		face := SharedDOFWeight(p, 3)
		edge := SharedDOFWeight(p, 2)
		vert := SharedDOFWeight(p, 1)
		if !(face > edge && edge > vert && vert == 1) {
			t.Fatalf("p=%d: face %v edge %v vert %v", p, face, edge, vert)
		}
	}
	if SharedDOFWeight(5, 0) != 0 {
		t.Fatal("no sharing should weigh 0")
	}
}

func TestAdjacencyFullSupersetOfFaceOnly(t *testing.T) {
	m := BoxTets(3, 3, 3, 1, 1, 1)
	gFace := m.AdjacencyGraph(FaceOnly, 6)
	gFull := m.AdjacencyGraph(FullAdjacency, 6)
	var nFace, nFull int
	for e := 0; e < gFace.N; e++ {
		nFace += len(gFace.Adj[e])
		nFull += len(gFull.Adj[e])
	}
	if nFull <= nFace {
		t.Fatalf("full adjacency (%d) should exceed face-only (%d)", nFull, nFace)
	}
	// Face adjacency in a tet mesh: every element has <= 4 face neighbors.
	for e := 0; e < gFace.N; e++ {
		if len(gFace.Adj[e]) > 4 {
			t.Fatalf("element %d has %d face neighbors", e, len(gFace.Adj[e]))
		}
	}
	// The paper observes O(10)-O(100) neighbors with vertex sharing.
	var maxFull int
	for e := 0; e < gFull.N; e++ {
		if len(gFull.Adj[e]) > maxFull {
			maxFull = len(gFull.Adj[e])
		}
	}
	if maxFull < 10 {
		t.Fatalf("full adjacency max degree = %d, expected O(10)+", maxFull)
	}
}

func TestAdjacencyGraphSymmetric(t *testing.T) {
	m := CarotidTets(6, 3, 3)
	g := m.AdjacencyGraph(FullAdjacency, 4)
	for a := 0; a < g.N; a++ {
		for _, e := range g.Adj[a] {
			found := false
			for _, back := range g.Adj[e.To] {
				if back.To == a && back.Weight == e.Weight {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not mirrored", a, e.To)
			}
		}
	}
}

func TestChainDomainShape(t *testing.T) {
	d := ChainDomain(4, PaperPatchElements, PaperOverlapElements)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Patches) != 4 || len(d.Interfaces) != 3 {
		t.Fatalf("patches=%d interfaces=%d", len(d.Patches), len(d.Interfaces))
	}
	if d.TotalElements() != 4*PaperPatchElements {
		t.Fatalf("total = %d", d.TotalElements())
	}
}

func TestChainDomainDOFMatchesPaperScale(t *testing.T) {
	// Table 3: 3 patches at P=10 give ~0.384 billion DOF. Our modal count
	// should land within a factor ~2 of that (the paper's counts include
	// solver-internal fields).
	d := ChainDomain(3, PaperPatchElements, PaperOverlapElements)
	dof := d.DOF(10, 4)
	if dof < 0.15e9 || dof > 0.8e9 {
		t.Fatalf("3-patch P=10 DOF = %g, expected ~0.4e9", dof)
	}
	// And 16 patches ~2.085B: ratio must scale linearly with patches.
	d16 := ChainDomain(16, PaperPatchElements, PaperOverlapElements)
	ratio := d16.DOF(10, 4) / dof
	if math.Abs(ratio-16.0/3.0) > 1e-9 {
		t.Fatalf("DOF ratio = %v", ratio)
	}
}

func TestCircleOfWillisDomain(t *testing.T) {
	d := CircleOfWillisDomain(PaperPatchElements, PaperOverlapElements)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Patches) != 4 {
		t.Fatalf("patches = %d", len(d.Patches))
	}
	if len(d.Interfaces) != 3 {
		t.Fatalf("interfaces = %d", len(d.Interfaces))
	}
	if d.ExternalInlets != 4 {
		t.Fatalf("inlets = %d", d.ExternalInlets)
	}
	// The central patch touches all three interfaces.
	if got := len(d.InterfacesOf(3)); got != 3 {
		t.Fatalf("central patch interfaces = %d", got)
	}
	if got := len(d.InterfacesOf(0)); got != 1 {
		t.Fatalf("feeder patch interfaces = %d", got)
	}
}

func TestChainDomainProperty(t *testing.T) {
	f := func(npRaw uint8) bool {
		np := int(npRaw%10) + 1
		d := ChainDomain(np, 100, 10)
		if d.Validate() != nil {
			return false
		}
		return len(d.Interfaces) == np-1 && d.TotalElements() == np*100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadInterface(t *testing.T) {
	d := ChainDomain(2, 10, 4)
	d.Interfaces[0].B = 7
	if d.Validate() == nil {
		t.Fatal("expected validation error")
	}
}

func TestAneurysmTetsBulges(t *testing.T) {
	m := AneurysmTets(16, 6, 6, 1.5)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	b := m.Bounds()
	// The dome inflates +y beyond the nominal pipe radius 0.5; -y stays.
	if b.Max.Y < 0.9 {
		t.Fatalf("no dome: max y = %v", b.Max.Y)
	}
	if b.Min.Y < -0.55 {
		t.Fatalf("-y wall moved: min y = %v", b.Min.Y)
	}
	// Volume exceeds the plain pipe volume.
	plain := AneurysmTets(16, 6, 6, 1e-9)
	if m.Volume() <= plain.Volume() {
		t.Fatalf("dome added no volume: %v vs %v", m.Volume(), plain.Volume())
	}
}

func TestAneurysmTetsPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AneurysmTets(4, 2, 2, 0)
}
