package dpd

import (
	"fmt"
	"math"
)

// RadialDistribution computes g(r) over mobile-particle pairs in nbins bins
// up to rmax, the standard structural validation of a particle fluid: a DPD
// liquid with soft conservative repulsion shows a depleted core (g(0) < 1,
// but nonzero — particles can overlap), a weak first shell near rc, and
// g → 1 at large separation. rmax must not exceed half the smallest periodic
// box edge (minimum-image validity).
func (s *System) RadialDistribution(rmax float64, nbins int) []float64 {
	if nbins < 1 || rmax <= 0 {
		panic(fmt.Sprintf("dpd: RadialDistribution(rmax=%v, nbins=%d)", rmax, nbins))
	}
	sz := s.Size()
	for d, per := range s.Periodic {
		if !per {
			continue
		}
		edge := [3]float64{sz.X, sz.Y, sz.Z}[d]
		if rmax > edge/2 {
			panic(fmt.Sprintf("dpd: rmax %v exceeds half box edge %v", rmax, edge/2))
		}
	}

	var mobile []int
	for i := range s.Particles {
		if !s.Particles[i].Frozen {
			mobile = append(mobile, i)
		}
	}
	n := len(mobile)
	counts := make([]float64, nbins)
	r2max := rmax * rmax
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			d := s.minimumImage(s.Particles[mobile[a]].Pos, s.Particles[mobile[b]].Pos)
			r2 := d.Norm2()
			if r2 >= r2max {
				continue
			}
			bin := int(math.Sqrt(r2) / rmax * float64(nbins))
			if bin >= nbins {
				bin = nbins - 1
			}
			counts[bin] += 2 // each pair contributes to both particles
		}
	}
	// Normalize by the ideal-gas expectation per shell.
	rho := float64(n) / s.Volume()
	g := make([]float64, nbins)
	dr := rmax / float64(nbins)
	for k := 0; k < nbins; k++ {
		r0 := float64(k) * dr
		r1 := r0 + dr
		shell := 4 * math.Pi / 3 * (r1*r1*r1 - r0*r0*r0)
		ideal := rho * shell * float64(n)
		if ideal > 0 {
			g[k] = counts[k] / ideal
		}
	}
	return g
}
