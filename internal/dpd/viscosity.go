package dpd

import (
	"fmt"

	"nektarg/internal/geometry"
)

// MeasureViscosity estimates the kinematic viscosity of the DPD fluid
// defined by p at number density rho, by driving a plane Poiseuille flow
// with a uniform body force and fitting the steady mean velocity:
//
//	ū = f H² / (12 ν)  ⇒  ν = f H² / (12 ū)
//
// for a channel of width H with no-slip walls. This is how the ν_DPD
// entering the Eq. 1 velocity scaling is obtained for a given parameter set
// (the paper: "fluid properties (e.g., viscosity) in different descriptions
// may not necessarily be the same in various method's units").
//
// The measurement runs warmupSteps to develop the flow and sampleSteps of
// averaging; ~3000/2000 at dt=0.005 gives a few percent accuracy for the
// standard fluid.
func MeasureViscosity(p Params, rho, force float64, warmupSteps, sampleSteps int) (float64, error) {
	if rho <= 0 || force <= 0 {
		return 0, fmt.Errorf("dpd: MeasureViscosity needs rho, force > 0")
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	const (
		lx, ly = 6.0, 6.0
		h      = 6.0 // channel width
	)
	sys := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: lx, Y: ly, Z: h}, [3]bool{true, true, false})
	sys.Walls = []Wall{
		&PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&PlaneWall{Point: geometry.Vec3{Z: h}, Norm: geometry.Vec3{Z: -1}},
	}
	sys.External = func(_ float64, _ *Particle) geometry.Vec3 {
		return geometry.Vec3{X: force}
	}
	sys.FillRandom(int(rho*lx*ly*h), 0)
	sys.Run(warmupSteps)

	// Mean streamwise velocity over the channel interior (excluding the
	// wall-force layers, where the effective-force model distorts the
	// parabola slightly).
	var sum float64
	var n int
	for s := 0; s < sampleSteps; s++ {
		sys.VVStep()
		for i := range sys.Particles {
			pt := &sys.Particles[i]
			if pt.Frozen || pt.Pos.Z < 1 || pt.Pos.Z > h-1 {
				continue
			}
			sum += pt.Vel.X
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("dpd: no interior samples")
	}
	uMean := sum / float64(n)
	if uMean <= 0 {
		return 0, fmt.Errorf("dpd: flow did not develop (mean u = %v)", uMean)
	}
	// The interior window [1, H-1] of the parabola u(z) = f z(H-z)/(2ν)
	// has mean f (H²/6 + c) ... integrate exactly: ∫₁^{H-1} z(H-z) dz /
	// (H-2) = (H²/6 - 1/3·(3H-2)/(H-2))·... compute numerically below.
	a, b := 1.0, h-1.0
	integral := (h*(b*b-a*a)/2 - (b*b*b-a*a*a)/3) / (b - a)
	nu := force * integral / (2 * uMean)
	return nu, nil
}
