package dpd

import (
	"fmt"

	"nektarg/internal/geometry"
)

// State is the serializable part of a System: everything needed to resume a
// run. Behavioral hooks (walls, bonded forces, external forcing, flux-face
// profiles) are code, not data — the caller re-attaches them after Restore.
// Because pairwise random forces are counter-based (seed, step, particle
// ids) and the stream RNG position plus the flux-face fractional-insertion
// accumulators are captured, a restored system — closed or open — continues
// bit-identically.
type State struct {
	Params    Params
	Lo, Hi    geometry.Vec3
	Periodic  [3]bool
	Particles []Particle
	Step      int
	Time      float64
	NextID    int64

	// RNG is the serialized position of the stream random source (PCG).
	// Nil in v1 checkpoints, which predate RNG capture; restore then
	// reseeds from Params.Seed and the insertion stream replays from zero.
	RNG []byte
	// FaceAcc holds the fractional-insertion accumulator of each flux face
	// in Inflows order. Nil in v1 checkpoints.
	FaceAcc []float64
	// Inserted and Deleted are the cumulative open-boundary particle
	// counters (telemetry continuity across restarts).
	Inserted, Deleted int64
}

// CaptureState deep-copies the resumable state, including the stream RNG
// position and per-face insertion accumulators.
func (s *System) CaptureState() State {
	rngBytes, err := s.rngSrc.MarshalBinary()
	if err != nil {
		// PCG.MarshalBinary cannot fail; keep the capture total anyway.
		rngBytes = nil
	}
	var acc []float64
	if len(s.Inflows) > 0 {
		acc = make([]float64, len(s.Inflows))
		for i, f := range s.Inflows {
			acc[i] = f.Acc
		}
	}
	return State{
		Params:    s.Params,
		Lo:        s.Lo,
		Hi:        s.Hi,
		Periodic:  s.Periodic,
		Particles: append([]Particle(nil), s.Particles...),
		Step:      s.Step,
		Time:      s.Time,
		NextID:    s.nextID,
		RNG:       rngBytes,
		FaceAcc:   acc,
		Inserted:  s.Inserted,
		Deleted:   s.Deleted,
	}
}

// RestoreState creates a fresh System from a captured state. Hooks (Walls,
// Bonded, External, Inflows) start empty; use AttachInflows to re-attach
// flux faces so their checkpointed insertion accumulators are restored too.
func RestoreState(st State) (*System, error) {
	if err := st.Params.Validate(); err != nil {
		return nil, fmt.Errorf("dpd: restoring: %w", err)
	}
	sys := NewSystem(st.Params, st.Lo, st.Hi, st.Periodic)
	if err := sys.applyCommon(st); err != nil {
		return nil, err
	}
	return sys, nil
}

// ApplyState restores a captured state in place, into a system whose hooks
// (walls, bonded models, flux faces) are already wired — the restart path of
// the metasolver, which rebuilds the scenario from code and then overlays
// the checkpointed physics state. The box geometry must match; flux-face
// accumulators are applied directly to the attached Inflows.
func (s *System) ApplyState(st State) error {
	if err := st.Params.Validate(); err != nil {
		return fmt.Errorf("dpd: applying state: %w", err)
	}
	if st.Lo != s.Lo || st.Hi != s.Hi || st.Periodic != s.Periodic {
		return fmt.Errorf("dpd: applying state: box %v..%v periodic %v does not match checkpoint %v..%v %v",
			s.Lo, s.Hi, s.Periodic, st.Lo, st.Hi, st.Periodic)
	}
	s.Params = st.Params
	if err := s.applyCommon(st); err != nil {
		return err
	}
	return s.consumePendingFaceAcc()
}

// applyCommon overlays the serialized fields shared by RestoreState and
// ApplyState onto sys; pending face accumulators are stashed for
// AttachInflows (RestoreState) or consumed immediately (ApplyState).
func (s *System) applyCommon(st State) error {
	s.Particles = append(s.Particles[:0], st.Particles...)
	s.Step = st.Step
	s.Time = st.Time
	s.nextID = st.NextID
	s.Inserted = st.Inserted
	s.Deleted = st.Deleted
	if st.RNG != nil {
		if err := s.rngSrc.UnmarshalBinary(st.RNG); err != nil {
			return fmt.Errorf("dpd: restoring rng stream: %w", err)
		}
	}
	if st.FaceAcc != nil {
		s.pendingFaceAcc = append([]float64(nil), st.FaceAcc...)
	} else {
		s.pendingFaceAcc = nil
	}
	return nil
}
