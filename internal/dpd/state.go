package dpd

import (
	"fmt"

	"nektarg/internal/geometry"
)

// State is the serializable part of a System: everything needed to resume a
// run. Behavioral hooks (walls, bonded forces, external forcing, flux-face
// profiles) are code, not data — the caller re-attaches them after Restore.
// Because pairwise random forces are counter-based (seed, step, particle
// ids), a restored closed system continues bit-identically.
type State struct {
	Params    Params
	Lo, Hi    geometry.Vec3
	Periodic  [3]bool
	Particles []Particle
	Step      int
	Time      float64
	NextID    int64
}

// CaptureState deep-copies the resumable state.
func (s *System) CaptureState() State {
	return State{
		Params:    s.Params,
		Lo:        s.Lo,
		Hi:        s.Hi,
		Periodic:  s.Periodic,
		Particles: append([]Particle(nil), s.Particles...),
		Step:      s.Step,
		Time:      s.Time,
		NextID:    s.nextID,
	}
}

// RestoreState creates a fresh System from a captured state. Hooks (Walls,
// Bonded, External, Inflows) start empty.
func RestoreState(st State) (*System, error) {
	if err := st.Params.Validate(); err != nil {
		return nil, fmt.Errorf("dpd: restoring: %w", err)
	}
	sys := NewSystem(st.Params, st.Lo, st.Hi, st.Periodic)
	sys.Particles = append([]Particle(nil), st.Particles...)
	sys.Step = st.Step
	sys.Time = st.Time
	sys.nextID = st.NextID
	return sys, nil
}
