package dpd

import (
	"testing"

	"nektarg/internal/geometry"
)

// mkOpenChannel builds the open-boundary test system: a flux-BC inflow with
// a prescribed profile, a measured outflow, and two no-slip walls — the
// minimal configuration whose restart used to diverge because RestoreState
// reseeded the insertion RNG from zero.
func mkOpenChannel() *System {
	p := DefaultParams(1)
	p.Dt = 0.005
	p.KBT = 0.2
	p.Seed = 7
	sys := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 6}, [3]bool{false, true, false})
	sys.Walls = []Wall{
		&PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&PlaneWall{Point: geometry.Vec3{Z: 6}, Norm: geometry.Vec3{Z: -1}},
	}
	sys.FillRandom(300, 0)
	inflow := &FluxBC{Axis: 0, AtMax: false, Rho: 3,
		Vel: func(geometry.Vec3) geometry.Vec3 { return geometry.Vec3{X: 0.4} }}
	outflow := &FluxBC{Axis: 0, AtMax: true, Rho: 3}
	if err := sys.AttachInflows(inflow, outflow); err != nil {
		panic(err)
	}
	return sys
}

// attachChannelHooks rewires the behavioral hooks (walls + flux faces) on a
// system restored from a captured state, exactly as a restart driver would.
func attachChannelHooks(t *testing.T, sys *System) {
	t.Helper()
	sys.Walls = []Wall{
		&PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&PlaneWall{Point: geometry.Vec3{Z: 6}, Norm: geometry.Vec3{Z: -1}},
	}
	inflow := &FluxBC{Axis: 0, AtMax: false, Rho: 3,
		Vel: func(geometry.Vec3) geometry.Vec3 { return geometry.Vec3{X: 0.4} }}
	outflow := &FluxBC{Axis: 0, AtMax: true, Rho: 3}
	if err := sys.AttachInflows(inflow, outflow); err != nil {
		t.Fatal(err)
	}
}

// assertBitIdentical compares two systems field by field with == (no
// tolerance: the restart contract is exact replay).
func assertBitIdentical(t *testing.T, ref, got *System) {
	t.Helper()
	if len(got.Particles) != len(ref.Particles) {
		t.Fatalf("particle counts: %d vs %d", len(got.Particles), len(ref.Particles))
	}
	for i := range ref.Particles {
		a, b := ref.Particles[i], got.Particles[i]
		if a.Pos != b.Pos || a.Vel != b.Vel || a.ID != b.ID || a.Species != b.Species {
			t.Fatalf("particle %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if got.Step != ref.Step || got.Time != ref.Time {
		t.Fatalf("clock mismatch: %d/%v vs %d/%v", got.Step, got.Time, ref.Step, ref.Time)
	}
	if got.Inserted != ref.Inserted || got.Deleted != ref.Deleted {
		t.Fatalf("open-boundary counters: inserted %d/%d deleted %d/%d",
			got.Inserted, ref.Inserted, got.Deleted, ref.Deleted)
	}
}

// TestFluxBCResumeIsBitIdentical is the kill-at-step-k regression for the
// RNG-position bug: an open (flux-BC) system killed at step k and restored
// from its checkpoint must replay the exact insertion stream — positions,
// velocities and insertion times — of the uninterrupted run. Before the
// stream RNG and face accumulators were serialized, the restored run
// replayed the RNG from zero and diverged within one insertion.
func TestFluxBCResumeIsBitIdentical(t *testing.T) {
	const kill, total = 40, 110

	ref := mkOpenChannel()
	ref.Run(total)

	sys := mkOpenChannel()
	sys.Run(kill)
	st := sys.CaptureState()

	resumed, err := RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	attachChannelHooks(t, resumed)
	resumed.Run(total - kill)

	if ref.Inserted == 0 {
		t.Fatal("test is vacuous: no insertions happened")
	}
	assertBitIdentical(t, ref, resumed)
}

// TestApplyStateInPlaceResume pins the in-place restore path the metasolver
// uses: the scenario is rebuilt from code (hooks attached), then the
// checkpointed state is overlaid with ApplyState.
func TestApplyStateInPlaceResume(t *testing.T) {
	const kill, total = 40, 90

	ref := mkOpenChannel()
	ref.Run(total)

	sys := mkOpenChannel()
	sys.Run(kill)
	st := sys.CaptureState()

	fresh := mkOpenChannel() // fully wired, at t=0
	if err := fresh.ApplyState(st); err != nil {
		t.Fatal(err)
	}
	fresh.Run(total - kill)
	assertBitIdentical(t, ref, fresh)
}

// TestApplyStateRejectsGeometryMismatch: overlaying a checkpoint onto a
// differently shaped box is a wiring error, not a silent corruption.
func TestApplyStateRejectsGeometryMismatch(t *testing.T) {
	sys := mkOpenChannel()
	st := sys.CaptureState()
	p := DefaultParams(1)
	other := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 3, Y: 3, Z: 3}, [3]bool{true, true, true})
	if err := other.ApplyState(st); err == nil {
		t.Fatal("expected geometry mismatch error")
	}
}

// TestAttachInflowsRejectsFaceCountMismatch: a checkpoint carrying two face
// accumulators cannot be resumed into a system wired with one face.
func TestAttachInflowsRejectsFaceCountMismatch(t *testing.T) {
	sys := mkOpenChannel()
	sys.Run(10)
	st := sys.CaptureState()
	resumed, err := RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.AttachInflows(&FluxBC{Axis: 0, Rho: 3}); err == nil {
		t.Fatal("expected face-count mismatch error")
	}
}
