package dpd

import (
	"fmt"
	"math"

	"nektarg/internal/geometry"
)

// PlaneWall is a planar no-slip wall: the fluid occupies the side the normal
// points into. WallVel lets the wall move tangentially (Couette driving).
type PlaneWall struct {
	Point   geometry.Vec3
	Norm    geometry.Vec3 // unit, into the fluid
	WallVel geometry.Vec3
}

// Distance implements Wall.
func (w *PlaneWall) Distance(p geometry.Vec3) float64 { return p.Sub(w.Point).Dot(w.Norm) }

// Normal implements Wall.
func (w *PlaneWall) Normal(geometry.Vec3) geometry.Vec3 { return w.Norm }

// Velocity implements Wall.
func (w *PlaneWall) Velocity(geometry.Vec3) geometry.Vec3 { return w.WallVel }

// CylinderWall is the interior of a circular pipe along the z-axis (the
// Figure 8 domain).
type CylinderWall struct {
	Center geometry.Vec3 // any point on the axis
	Radius float64
}

// Distance implements Wall (positive inside the pipe).
func (w *CylinderWall) Distance(p geometry.Vec3) float64 {
	dx := p.X - w.Center.X
	dy := p.Y - w.Center.Y
	return w.Radius - math.Hypot(dx, dy)
}

// Normal implements Wall: radially inward.
func (w *CylinderWall) Normal(p geometry.Vec3) geometry.Vec3 {
	dx := p.X - w.Center.X
	dy := p.Y - w.Center.Y
	r := math.Hypot(dx, dy)
	if r == 0 {
		return geometry.Vec3{X: 1}
	}
	return geometry.Vec3{X: -dx / r, Y: -dy / r}
}

// Velocity implements Wall.
func (w *CylinderWall) Velocity(geometry.Vec3) geometry.Vec3 { return geometry.Vec3{} }

// meanFieldBoundaryForce returns the exact mean-field compensation for the
// missing half-space of neighbours beyond a planar boundary, for a particle
// at distance h (0 <= h <= rc) from it: integrating the conservative force
// a(1 - r/rc) over the excluded spherical cap at number density rho gives
//
//	F(h) = rho a pi ( rc³/12 - h² rc/2 + 2h³/3 - h⁴/(4 rc) )
//
// directed along the inward normal. This is the conservative part of the
// effective boundary force Feff of Lei, Fedosov & Karniadakis (2011); it
// makes walls and open faces exert exactly the bulk pressure, keeping the
// near-boundary density flat.
func (s *System) meanFieldBoundaryForce(h float64) float64 {
	if h >= s.Rc {
		return 0
	}
	if h < 0 {
		h = 0
	}
	rho := s.targetDensity()
	a := s.A[0][0]
	rc := s.Rc
	return rho * a * math.Pi * (rc*rc*rc/12 - h*h*rc/2 + 2*h*h*h/3 - h*h*h*h/(4*rc))
}

// targetDensity estimates the bulk number density for the boundary force;
// inflow faces carry an explicit target, otherwise measure.
func (s *System) targetDensity() float64 {
	for _, f := range s.Inflows {
		if f.Rho > 0 {
			return f.Rho
		}
	}
	return s.NumberDensity()
}

// addWallForces applies the effective boundary forces of Lei, Fedosov &
// Karniadakis (2011): the mean-field normal force compensating the missing
// particle half-space beyond the wall plus a dissipative near-wall friction
// that enforces no-slip ("we impose effective boundary forces Feff on the
// particles near boundaries").
func (s *System) addWallForces() {
	if len(s.Walls) == 0 {
		return
	}
	gw := s.WallGamma()
	for i := range s.Particles {
		p := &s.Particles[i]
		if p.Frozen {
			continue
		}
		for _, w := range s.Walls {
			h := w.Distance(p.Pos)
			if h >= s.Rc {
				continue
			}
			if h < 0 {
				h = 0
			}
			wgt := 1 - h/s.Rc
			n := w.Normal(p.Pos)
			rel := p.Vel.Sub(w.Velocity(p.Pos))
			f := n.Scale(s.meanFieldBoundaryForce(h)).Sub(rel.Scale(gw * wgt))
			p.F = p.F.Add(f)
		}
	}
}

// addOpenFaceForces adds the conservative part of Feff at inflow/outflow
// faces: the virtual reservoir beyond an open face must push back with the
// bulk pressure, otherwise near-face fluid expands out of the domain. Unlike
// walls there is no dissipative term — flow passes through freely.
func (s *System) addOpenFaceForces() {
	if len(s.Inflows) == 0 {
		return
	}
	// Adaptive velocity control ("such forces ... control flow velocities
	// at inflow/outflow"): faces with a prescribed profile measure the mean
	// velocity in a one-rc buffer slab and apply a proportional corrective
	// body force to the slab.
	type control struct {
		force geometry.Vec3
		on    bool
	}
	ctrl := make([]control, len(s.Inflows))
	for k, f := range s.Inflows {
		if f.Vel == nil {
			continue
		}
		var mean geometry.Vec3
		var n int
		for i := range s.Particles {
			p := &s.Particles[i]
			if p.Frozen {
				continue
			}
			if h := f.faceDistance(s, p.Pos); h >= 0 && h < s.Rc {
				mean = mean.Add(p.Vel)
				n++
			}
		}
		if n == 0 {
			continue
		}
		mean = mean.Scale(1 / float64(n))
		target := f.Vel(f.randomFacePoint(s))
		ctrl[k] = control{force: target.Sub(mean).Scale(f.gain()), on: true}
	}
	for i := range s.Particles {
		p := &s.Particles[i]
		if p.Frozen {
			continue
		}
		for k, f := range s.Inflows {
			h := f.faceDistance(s, p.Pos)
			if h >= s.Rc || h < 0 {
				continue
			}
			p.F = p.F.Add(f.inwardNormal().Scale(s.meanFieldBoundaryForce(h)))
			if ctrl[k].on {
				p.F = p.F.Add(ctrl[k].force)
			}
		}
	}
}

// faceDistance returns the distance from pos to the face along the inward
// normal (negative when outside the box).
func (f *FluxBC) faceDistance(s *System, pos geometry.Vec3) float64 {
	c := [3]float64{pos.X, pos.Y, pos.Z}[f.Axis]
	lo := [3]float64{s.Lo.X, s.Lo.Y, s.Lo.Z}[f.Axis]
	hi := [3]float64{s.Hi.X, s.Hi.Y, s.Hi.Z}[f.Axis]
	if f.AtMax {
		return hi - c
	}
	return c - lo
}

// inwardNormal returns the unit normal pointing into the domain.
func (f *FluxBC) inwardNormal() geometry.Vec3 {
	var n geometry.Vec3
	v := 1.0
	if f.AtMax {
		v = -1
	}
	switch f.Axis {
	case 0:
		n.X = v
	case 1:
		n.Y = v
	default:
		n.Z = v
	}
	return n
}

// WallA returns the effective wall repulsion coefficient.
func (s *System) WallA() float64 { return s.A[0][0] }

// WallGamma returns the effective wall friction coefficient (3γ gives a
// sharp no-slip layer for the standard fluid).
func (s *System) WallGamma() float64 { return 3 * s.Gamma }

// applyBoundaries wraps periodic dimensions, bounces particles off walls and
// handles open faces: particles crossing a face carrying a FluxBC are
// deleted; other non-periodic faces reflect specularly.
func (s *System) applyBoundaries() {
	sz := s.Size()
	var deleted []int
	for i := range s.Particles {
		p := &s.Particles[i]
		if p.Frozen {
			continue
		}
		// Periodic wrap.
		if s.Periodic[0] {
			p.Pos.X = s.Lo.X + wrap(p.Pos.X-s.Lo.X, sz.X)
		}
		if s.Periodic[1] {
			p.Pos.Y = s.Lo.Y + wrap(p.Pos.Y-s.Lo.Y, sz.Y)
		}
		if s.Periodic[2] {
			p.Pos.Z = s.Lo.Z + wrap(p.Pos.Z-s.Lo.Z, sz.Z)
		}
		// Geometric walls: bounce-back (reverse relative velocity, reflect
		// position) imposes no-slip at the surface.
		for _, w := range s.Walls {
			if h := w.Distance(p.Pos); h < 0 {
				n := w.Normal(p.Pos)
				p.Pos = p.Pos.Sub(n.Scale(2 * h)) // h < 0: push back inside
				vw := w.Velocity(p.Pos)
				p.Vel = vw.Scale(2).Sub(p.Vel)
			}
		}
		// Open/solid box faces on non-periodic dims.
		if del := s.handleFace(p, 0, sz); del {
			deleted = append(deleted, i)
			continue
		}
		if del := s.handleFace(p, 1, sz); del {
			deleted = append(deleted, i)
			continue
		}
		if del := s.handleFace(p, 2, sz); del {
			deleted = append(deleted, i)
		}
	}
	if len(deleted) > 0 {
		s.removeParticles(deleted)
	}
}

func wrap(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// handleFace reflects or deletes a particle leaving the box along dim d;
// returns true when the particle must be deleted (outflow).
func (s *System) handleFace(p *Particle, d int, sz geometry.Vec3) bool {
	if s.Periodic[d] {
		return false
	}
	lo := [3]float64{s.Lo.X, s.Lo.Y, s.Lo.Z}[d]
	hi := [3]float64{s.Hi.X, s.Hi.Y, s.Hi.Z}[d]
	get := func() float64 {
		switch d {
		case 0:
			return p.Pos.X
		case 1:
			return p.Pos.Y
		}
		return p.Pos.Z
	}
	set := func(v float64) {
		switch d {
		case 0:
			p.Pos.X = v
		case 1:
			p.Pos.Y = v
		default:
			p.Pos.Z = v
		}
	}
	flipVel := func() {
		switch d {
		case 0:
			p.Vel.X = -p.Vel.X
		case 1:
			p.Vel.Y = -p.Vel.Y
		default:
			p.Vel.Z = -p.Vel.Z
		}
	}
	x := get()
	if x < lo {
		if s.fluxFace(d, false) != nil {
			return true
		}
		set(2*lo - x)
		flipVel()
	} else if x > hi {
		if s.fluxFace(d, true) != nil {
			return true
		}
		set(2*hi - x)
		flipVel()
	}
	return false
}

// fluxFace finds the FluxBC on the given face, if any.
func (s *System) fluxFace(axis int, atMax bool) *FluxBC {
	for _, f := range s.Inflows {
		if f.Axis == axis && f.AtMax == atMax {
			return f
		}
	}
	return nil
}

// removeParticles deletes the given (sorted ascending) indices.
func (s *System) removeParticles(idx []int) {
	s.Deleted += int64(len(idx))
	out := s.Particles[:0]
	k := 0
	for i := range s.Particles {
		if k < len(idx) && idx[k] == i {
			k++
			continue
		}
		out = append(out, s.Particles[i])
	}
	s.Particles = out
}

// FluxBC is an open boundary face following Lei, Fedosov & Karniadakis
// (2011): particles crossing the face are deleted, and new particles are
// inserted "according to local particle flux" — the one-sided Maxwellian
// influx ρ [u_n Φ(s) + σ φ(s)] of a virtual reservoir beyond the face. With
// Vel set the reservoir moves at the prescribed inflow profile; with Vel nil
// (an outflow) the reservoir follows the locally measured fluid velocity, so
// the thermal back-flux is reinjected and the mean density stays at Rho.
type FluxBC struct {
	Axis  int  // 0=x, 1=y, 2=z
	AtMax bool // face at Hi (true) or Lo (false)
	// Vel returns the reservoir velocity at a face point; nil measures it
	// from the near-face fluid.
	Vel func(pos geometry.Vec3) geometry.Vec3
	// Rho is the target number density of the reservoir fluid.
	Rho float64
	// Species of inserted particles.
	Species int
	// ControlGain is the proportional gain of the adaptive velocity
	// controller in the face's buffer slab; 0 selects the default of 10.
	ControlGain float64

	// Acc is the fractional particle accumulator: the sub-unit remainder of
	// the integrated one-sided influx. It is resumable state (captured into
	// dpd.State.FaceAcc by CaptureState) — dropping it across a restart
	// shifts every subsequent insertion time.
	Acc float64
}

// gain returns the effective controller gain.
func (f *FluxBC) gain() float64 {
	if f.ControlGain <= 0 {
		return 10
	}
	return f.ControlGain
}

// oneSidedFlux returns E[max(v_n, 0)] for v_n ~ N(w, sd²): the kinetic
// influx per unit density and area.
func oneSidedFlux(w, sd float64) float64 {
	if sd == 0 {
		if w > 0 {
			return w
		}
		return 0
	}
	s := w / sd
	phi := math.Exp(-0.5*s*s) / math.Sqrt(2*math.Pi)
	cdf := 0.5 * (1 + math.Erf(s/math.Sqrt2))
	return w*cdf + sd*phi
}

// reservoirVelocity returns the reservoir drift at a face point.
func (f *FluxBC) reservoirVelocity(s *System, pos geometry.Vec3) geometry.Vec3 {
	if f.Vel != nil {
		return f.Vel(pos)
	}
	v, n := s.SampleVelocityAt(pos, 1.5*s.Rc)
	if n == 0 {
		return geometry.Vec3{}
	}
	return v
}

// inwardComponent projects a velocity onto the inward face normal.
func (f *FluxBC) inwardComponent(v geometry.Vec3) float64 {
	c := [3]float64{v.X, v.Y, v.Z}[f.Axis]
	if f.AtMax {
		return -c
	}
	return c
}

// apply inserts particles for the accumulated one-sided influx of one step.
func (f *FluxBC) apply(s *System) {
	if f.Axis < 0 || f.Axis > 2 {
		panic(fmt.Sprintf("dpd: FluxBC axis %d", f.Axis))
	}
	if f.Rho <= 0 {
		return // deletion-only face
	}
	sz := s.Size()
	dims := [3]float64{sz.X, sz.Y, sz.Z}
	area := dims[(f.Axis+1)%3] * dims[(f.Axis+2)%3]
	sd := math.Sqrt(s.KBT)

	// Reservoir drift sampled at a few face points.
	const nSample = 4
	var w float64
	var vres geometry.Vec3
	for k := 0; k < nSample; k++ {
		pos := f.randomFacePoint(s)
		v := f.reservoirVelocity(s, pos)
		vres = vres.Add(v)
		w += f.inwardComponent(v)
	}
	w /= nSample
	vres = vres.Scale(1.0 / nSample)

	f.Acc += f.Rho * oneSidedFlux(w, sd) * area * s.Dt
	for f.Acc >= 1 {
		f.Acc--
		pos := f.randomFacePoint(s)
		// Normal component: positive part of N(w, sd) via rejection.
		vn := 0.0
		for try := 0; try < 64; try++ {
			vn = w + s.rng.NormFloat64()*sd
			if vn > 0 {
				break
			}
			vn = 0
		}
		vel := geometry.Vec3{
			X: vres.X + s.rng.NormFloat64()*sd,
			Y: vres.Y + s.rng.NormFloat64()*sd,
			Z: vres.Z + s.rng.NormFloat64()*sd,
		}
		// Overwrite the normal component with the inward-conditioned draw.
		sign := 1.0
		if f.AtMax {
			sign = -1
		}
		switch f.Axis {
		case 0:
			vel.X = sign * vn
		case 1:
			vel.Y = sign * vn
		default:
			vel.Z = sign * vn
		}
		s.AddParticle(pos, vel, f.Species, false)
		s.Inserted++
	}
}

// randomFacePoint samples a point in a thin insertion slab at the face.
func (f *FluxBC) randomFacePoint(s *System) geometry.Vec3 {
	sz := s.Size()
	depth := 0.2 * s.Rc
	pos := geometry.Vec3{
		X: s.Lo.X + s.rng.Float64()*sz.X,
		Y: s.Lo.Y + s.rng.Float64()*sz.Y,
		Z: s.Lo.Z + s.rng.Float64()*sz.Z,
	}
	coord := func(lo, hi float64) float64 {
		if f.AtMax {
			return hi - s.rng.Float64()*depth
		}
		return lo + s.rng.Float64()*depth
	}
	switch f.Axis {
	case 0:
		pos.X = coord(s.Lo.X, s.Hi.X)
	case 1:
		pos.Y = coord(s.Lo.Y, s.Hi.Y)
	default:
		pos.Z = coord(s.Lo.Z, s.Hi.Z)
	}
	return pos
}
