package dpd

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"

	"nektarg/internal/geometry"
	"nektarg/internal/monitor"
	"nektarg/internal/telemetry"
	"nektarg/internal/work"
)

// Particle is one DPD particle. Mass is 1 in DPD units.
type Particle struct {
	Pos, Vel, F geometry.Vec3
	Species     int
	ID          int64
	// Frozen particles (wall material) exert forces but do not move.
	Frozen bool
}

// BondedForce adds intra-molecule forces (springs, bending, area/volume
// constraints); RBC membranes and platelet adhesion plug in through it.
type BondedForce interface {
	// AddForces accumulates forces into sys.Particles[i].F.
	AddForces(sys *System)
}

// ExternalForce supplies a per-particle body force (e.g. the time-periodic
// pipe driving force of Figure 8).
type ExternalForce func(t float64, p *Particle) geometry.Vec3

// Wall imposes no-slip solid boundaries; see boundaries.go.
type Wall interface {
	// Distance returns the signed distance from pos to the wall surface,
	// positive on the fluid side.
	Distance(pos geometry.Vec3) float64
	// Normal returns the inward (into-fluid) unit normal at the closest
	// surface point.
	Normal(pos geometry.Vec3) geometry.Vec3
	// Velocity returns the wall velocity at the closest surface point.
	Velocity(pos geometry.Vec3) geometry.Vec3
}

// System is one DPD domain ΩA.
type System struct {
	Params
	Lo, Hi   geometry.Vec3
	Periodic [3]bool

	Particles []Particle

	Bonded   []BondedForce
	External ExternalForce
	Walls    []Wall
	Inflows  []*FluxBC

	Step int
	Time float64

	// Inserted and Deleted count cumulative open-boundary particle
	// insertions and deletions (FluxBC inflow/outflow management). VVStep
	// reports the per-step deltas as telemetry gauges when Rec is set.
	Inserted, Deleted int64

	// Rec is the optional per-rank telemetry recorder; nil (the default)
	// disables instrumentation at nil-receiver no-op cost.
	Rec *telemetry.Recorder

	// Watch is the optional solver watchdog bundle: VVStep feeds it the
	// particle count (open-boundary drift detection) and scans particle
	// state for NaN/Inf, producing structured health events instead of
	// silently corrupting the ensemble. Nil disables all probes.
	Watch *monitor.Watchdogs

	nextID int64

	// rngSrc/rng drive all stream-based randomness (FillRandom, flux-BC
	// insertions). The source is a PCG whose full position serializes into
	// dpd.State, so a restored open (flux-BC) system replays the exact
	// insertion stream an uninterrupted run would have drawn — the
	// checkpoint/restart determinism contract. Pairwise random *forces* are
	// counter-based (see pairXi) and carry no stream state at all.
	rngSrc *rand.PCG
	rng    *rand.Rand

	// pendingFaceAcc holds flux-face fractional-insertion accumulators
	// restored from a checkpoint before the caller has re-attached its
	// FluxBC hooks; AttachInflows consumes it.
	pendingFaceAcc []float64

	// cell list scratch
	ncell   [3]int
	cellLen [3]float64
	heads   []int32
	next    []int32

	// Force-evaluation scratch (arena contract, DESIGN.md §14): reused every
	// step, sized up on particle growth, and deliberately absent from
	// dpd.State — CaptureState serializes named simulation state only, so
	// scratch reuse can never leak across a checkpoint round-trip (pinned by
	// TestCaptureStateExcludesScratch). Pair forces accumulate into one
	// buffer per TILE (fixed count, see forceTiles) merged in tile order,
	// so the result is bit-identical for every worker count including 1.
	tiles   []forceTile
	tileBuf [][]geometry.Vec3
	fOld    []geometry.Vec3 // velocity-Verlet old-force buffer
	pool    work.Pool
	forceFn func(int) // prebuilt worker closure (rebuilt when forceNW changes)
	forceNW int

	// forceTiles is the force-accumulation tile count (clamped to the z-cell
	// count). 0 means "capture GOMAXPROCS at first use" — exactly the strip
	// layout the pre-arena implementation used by default, so trajectories
	// replay the historical bits on any given machine. Once captured it
	// never changes, and it is deliberately independent of Parallel: the
	// floating-point merge grouping is set by the tiling alone, so every
	// worker count reproduces the same forces bit for bit. Tests override it
	// to exercise multi-tile merging regardless of host core count.
	forceTiles int

	// Parallel controls the number of force-evaluation workers; 0 means
	// GOMAXPROCS. The worker count affects wall-clock only, never the bits.
	Parallel int
}

// forceTile is a z-strip of cells owning its pair interactions.
type forceTile struct{ z0, z1 int }

// NewSystem builds an empty domain.
func NewSystem(p Params, lo, hi geometry.Vec3, periodic [3]bool) *System {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	size := hi.Sub(lo)
	if size.X <= 0 || size.Y <= 0 || size.Z <= 0 {
		panic(fmt.Sprintf("dpd: empty box %v..%v", lo, hi))
	}
	src := rand.NewPCG(p.Seed, rngStreamSalt)
	return &System{
		Params: p, Lo: lo, Hi: hi, Periodic: periodic,
		rngSrc: src, rng: rand.New(src),
	}
}

// rngStreamSalt is the fixed second PCG seed word: it separates the
// stream-based RNG (insertions, initial conditions) from the counter-based
// pairwise force hash, which consumes Params.Seed directly.
const rngStreamSalt = 0x6e656b746172672d // "nektarg-"

// AttachInflows installs the flux-BC faces on the system. After a
// RestoreState the faces additionally receive the checkpointed
// fractional-insertion accumulators (in face order), so a restored open
// system inserts particles exactly where the uninterrupted run would have.
func (s *System) AttachInflows(faces ...*FluxBC) error {
	s.Inflows = append([]*FluxBC(nil), faces...)
	return s.consumePendingFaceAcc()
}

// consumePendingFaceAcc moves checkpointed accumulators onto the attached
// faces; a count mismatch is a wiring error.
func (s *System) consumePendingFaceAcc() error {
	if s.pendingFaceAcc == nil {
		return nil
	}
	if len(s.pendingFaceAcc) != len(s.Inflows) {
		return fmt.Errorf("dpd: checkpoint carries %d flux-face accumulators but %d faces are attached",
			len(s.pendingFaceAcc), len(s.Inflows))
	}
	for i, f := range s.Inflows {
		f.Acc = s.pendingFaceAcc[i]
	}
	s.pendingFaceAcc = nil
	return nil
}

// Size returns the box edge lengths.
func (s *System) Size() geometry.Vec3 { return s.Hi.Sub(s.Lo) }

// Volume returns the box volume.
func (s *System) Volume() float64 {
	sz := s.Size()
	return sz.X * sz.Y * sz.Z
}

// AddParticle appends a particle and returns its index.
func (s *System) AddParticle(pos, vel geometry.Vec3, species int, frozen bool) int {
	if species < 0 || species >= len(s.A) {
		panic(fmt.Sprintf("dpd: species %d of %d", species, len(s.A)))
	}
	s.Particles = append(s.Particles, Particle{
		Pos: pos, Vel: vel, Species: species, ID: s.nextID, Frozen: frozen,
	})
	s.nextID++
	return len(s.Particles) - 1
}

// FillRandom populates the box with n fluid particles of the given species at
// rest plus Maxwellian velocities for temperature kBT.
func (s *System) FillRandom(n, species int) {
	sz := s.Size()
	sd := math.Sqrt(s.KBT)
	for i := 0; i < n; i++ {
		pos := geometry.Vec3{
			X: s.Lo.X + s.rng.Float64()*sz.X,
			Y: s.Lo.Y + s.rng.Float64()*sz.Y,
			Z: s.Lo.Z + s.rng.Float64()*sz.Z,
		}
		vel := geometry.Vec3{
			X: s.rng.NormFloat64() * sd,
			Y: s.rng.NormFloat64() * sd,
			Z: s.rng.NormFloat64() * sd,
		}
		s.AddParticle(pos, vel, species, false)
	}
}

// minimumImage returns the displacement a-b under periodic wrapping.
func (s *System) minimumImage(a, b geometry.Vec3) geometry.Vec3 {
	d := a.Sub(b)
	sz := s.Size()
	if s.Periodic[0] {
		d.X -= sz.X * math.Round(d.X/sz.X)
	}
	if s.Periodic[1] {
		d.Y -= sz.Y * math.Round(d.Y/sz.Y)
	}
	if s.Periodic[2] {
		d.Z -= sz.Z * math.Round(d.Z/sz.Z)
	}
	return d
}

// buildCells refreshes the linked-cell list.
func (s *System) buildCells() {
	sz := s.Size()
	dims := [3]float64{sz.X, sz.Y, sz.Z}
	for d := 0; d < 3; d++ {
		s.ncell[d] = int(dims[d] / s.Rc)
		if s.ncell[d] < 1 {
			s.ncell[d] = 1
		}
		s.cellLen[d] = dims[d] / float64(s.ncell[d])
	}
	ntot := s.ncell[0] * s.ncell[1] * s.ncell[2]
	if cap(s.heads) < ntot {
		s.heads = make([]int32, ntot)
	}
	s.heads = s.heads[:ntot]
	for i := range s.heads {
		s.heads[i] = -1
	}
	if cap(s.next) < len(s.Particles) {
		s.next = make([]int32, len(s.Particles))
	}
	s.next = s.next[:len(s.Particles)]
	for i := range s.Particles {
		c := s.cellOf(s.Particles[i].Pos)
		s.next[i] = s.heads[c]
		s.heads[c] = int32(i)
	}
}

func (s *System) cellOf(pos geometry.Vec3) int {
	rel := pos.Sub(s.Lo)
	coords := [3]float64{rel.X, rel.Y, rel.Z}
	var c [3]int
	for d := 0; d < 3; d++ {
		c[d] = int(coords[d] / s.cellLen[d])
		if c[d] < 0 {
			c[d] = 0
		}
		if c[d] >= s.ncell[d] {
			c[d] = s.ncell[d] - 1
		}
	}
	return c[0] + s.ncell[0]*(c[1]+s.ncell[1]*c[2])
}

// ComputeForces evaluates all forces into Particles[i].F. Pairwise forces
// are computed in parallel over a FIXED tiling of cell z-strips with
// per-tile accumulation buffers and counter-based random numbers; because
// neither the tiling nor the merge order depends on the worker count, the
// forces are bit-identical for every Parallel setting. Steady-state calls
// reuse all scratch and allocate nothing.
func (s *System) ComputeForces() {
	sp := s.Rec.Begin("dpd.forces")
	defer sp.End()
	n := len(s.Particles)
	for i := range s.Particles {
		s.Particles[i].F = geometry.Vec3{}
	}
	s.buildCells()

	// Fixed tiling: the tile layout depends on the cell grid and the
	// captured forceTiles count, never on the worker count, so the per-tile
	// partial sums and their tile-order merge below give bit-identical
	// forces for any Parallel setting.
	if s.forceTiles <= 0 {
		s.forceTiles = runtime.GOMAXPROCS(0)
	}
	nt := s.forceTiles
	if nt > s.ncell[2] {
		nt = s.ncell[2]
	}
	if nt < 1 {
		nt = 1
	}
	s.tiles = s.tiles[:0]
	per := (s.ncell[2] + nt - 1) / nt
	for z := 0; z < s.ncell[2]; z += per {
		z1 := z + per
		if z1 > s.ncell[2] {
			z1 = s.ncell[2]
		}
		s.tiles = append(s.tiles, forceTile{z, z1})
	}
	for len(s.tileBuf) < len(s.tiles) {
		s.tileBuf = append(s.tileBuf, nil)
	}
	for t := range s.tiles {
		if cap(s.tileBuf[t]) < n {
			s.tileBuf[t] = make([]geometry.Vec3, n)
		}
		s.tileBuf[t] = s.tileBuf[t][:n]
		clear(s.tileBuf[t])
	}

	nw := s.workers()
	if nw > len(s.tiles) {
		nw = len(s.tiles)
	}
	if nw > 1 {
		if s.forceFn == nil || s.forceNW != nw {
			s.forceNW = nw
			s.forceFn = func(w int) {
				for t := w; t < len(s.tiles); t += s.forceNW {
					s.forcesInStrip(s.tiles[t].z0, s.tiles[t].z1, s.tileBuf[t])
				}
			}
		}
		s.pool.Run(nw, s.forceFn)
	} else {
		for t := range s.tiles {
			s.forcesInStrip(s.tiles[t].z0, s.tiles[t].z1, s.tileBuf[t])
		}
	}
	for t := range s.tiles {
		buf := s.tileBuf[t]
		for i := range buf {
			s.Particles[i].F = s.Particles[i].F.Add(buf[i])
		}
	}

	// Bonded, wall and external forces (serial; cheap relative to pairs).
	for _, b := range s.Bonded {
		b.AddForces(s)
	}
	s.addWallForces()
	s.addOpenFaceForces()
	if s.External != nil {
		for i := range s.Particles {
			if !s.Particles[i].Frozen {
				s.Particles[i].F = s.Particles[i].F.Add(s.External(s.Time, &s.Particles[i]))
			}
		}
	}
}

// workers resolves the Parallel knob: 0 (the default) means GOMAXPROCS.
func (s *System) workers() int {
	nw := s.Parallel
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw < 1 {
		nw = 1
	}
	return nw
}

// forcesInStrip accumulates pair forces for all pairs whose *owning* cell
// (the lexicographically smaller of the two cells, or the cell itself for
// intra-cell pairs) lies in the z-strip [z0, z1).
func (s *System) forcesInStrip(z0, z1 int, buf []geometry.Vec3) {
	rc2 := s.Rc * s.Rc
	for cz := z0; cz < z1; cz++ {
		for cy := 0; cy < s.ncell[1]; cy++ {
			for cx := 0; cx < s.ncell[0]; cx++ {
				home := cx + s.ncell[0]*(cy+s.ncell[1]*cz)
				// Half-shell of neighbor cells (13 + self) so each pair is
				// visited exactly once by exactly one strip.
				for _, off := range halfShell {
					nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
					if !s.wrapCell(&nx, 0) || !s.wrapCell(&ny, 1) || !s.wrapCell(&nz, 2) {
						continue
					}
					nbr := nx + s.ncell[0]*(ny+s.ncell[1]*nz)
					if nbr == home && off != [3]int{0, 0, 0} {
						continue // degenerate wrap in a 1-cell dimension
					}
					s.pairCells(home, nbr, off == [3]int{0, 0, 0}, rc2, buf)
				}
			}
		}
	}
}

// halfShell lists the cell offsets covering each neighbor pair once.
var halfShell = [][3]int{
	{0, 0, 0},
	{1, 0, 0},
	{-1, 1, 0}, {0, 1, 0}, {1, 1, 0},
	{-1, -1, 1}, {0, -1, 1}, {1, -1, 1},
	{-1, 0, 1}, {0, 0, 1}, {1, 0, 1},
	{-1, 1, 1}, {0, 1, 1}, {1, 1, 1},
}

// wrapCell wraps a cell index along dimension d; returns false when the
// index leaves a non-periodic box.
func (s *System) wrapCell(c *int, d int) bool {
	if *c < 0 {
		if !s.Periodic[d] {
			return false
		}
		*c += s.ncell[d]
	} else if *c >= s.ncell[d] {
		if !s.Periodic[d] {
			return false
		}
		*c -= s.ncell[d]
	}
	return true
}

// pairCells accumulates forces between particles of cells ca and cb.
func (s *System) pairCells(ca, cb int, same bool, rc2 float64, buf []geometry.Vec3) {
	for i := s.heads[ca]; i >= 0; i = s.next[i] {
		jStart := s.heads[cb]
		if same {
			jStart = s.next[i]
		}
		for j := jStart; j >= 0; j = s.next[j] {
			s.pairForce(int(i), int(j), rc2, buf)
		}
	}
}

// pairForce computes the Groot-Warren force between particles i and j.
func (s *System) pairForce(i, j int, rc2 float64, buf []geometry.Vec3) {
	pi := &s.Particles[i]
	pj := &s.Particles[j]
	if pi.Frozen && pj.Frozen {
		return
	}
	d := s.minimumImage(pi.Pos, pj.Pos)
	r2 := d.Norm2()
	if r2 >= rc2 || r2 == 0 {
		return
	}
	r := math.Sqrt(r2)
	rhat := d.Scale(1 / r)
	w := 1 - r/s.Rc

	a := s.A[pi.Species][pj.Species]
	fc := a * w

	vij := pi.Vel.Sub(pj.Vel)
	wd := w * w
	fd := -s.Gamma * wd * rhat.Dot(vij)

	sigma := math.Sqrt(2 * s.Gamma * s.KBT)
	xi := pairXi(s.Seed, uint64(s.Step), pi.ID, pj.ID)
	fr := sigma * w * xi / math.Sqrt(s.Dt)

	f := rhat.Scale(fc + fd + fr)
	buf[i] = buf[i].Add(f)
	buf[j] = buf[j].Sub(f)
}

// VVStep advances one modified velocity-Verlet step (Groot-Warren λ scheme):
//
//	v~ = v + λ dt f/m;  x += dt v + dt²f/2;  recompute f(x, v~);
//	v += dt (f_old + f_new)/2
//
// For simplicity and robustness we use the common DPD-VV variant: predict
// velocities, move, recompute forces, correct velocities.
func (s *System) VVStep() {
	sp := s.Rec.Begin("dpd.step")
	defer sp.End()
	ins0, del0 := s.Inserted, s.Deleted

	dt := s.Dt
	if s.Step == 0 {
		s.ComputeForces()
	}
	// Predict.
	for i := range s.Particles {
		p := &s.Particles[i]
		if p.Frozen {
			continue
		}
		p.Vel = p.Vel.Add(p.F.Scale(s.Lambda * dt))
		p.Pos = p.Pos.Add(p.Vel.Scale(dt))
	}
	s.applyBoundaries()
	s.Step++
	s.Time += dt
	if cap(s.fOld) < len(s.Particles) {
		s.fOld = make([]geometry.Vec3, len(s.Particles))
	}
	s.fOld = s.fOld[:len(s.Particles)]
	old := s.fOld
	for i := range s.Particles {
		old[i] = s.Particles[i].F
	}
	s.ComputeForces()
	// Correct: v = v_pred + dt (f_new + (1-2λ) f_old)/2, which reduces to
	// the standard half-step correction for λ = 1/2.
	for i := range s.Particles {
		p := &s.Particles[i]
		if p.Frozen {
			continue
		}
		p.Vel = p.Vel.Add(p.F.Scale(dt / 2)).Add(old[i].Scale(dt * (1 - 2*s.Lambda) / 2))
	}
	// Inflow/outflow particle management runs after the move.
	for _, f := range s.Inflows {
		f.apply(s)
	}

	s.Rec.Gauge("dpd.particles", float64(len(s.Particles)))
	s.Rec.Gauge("dpd.inserted", float64(s.Inserted-ins0))
	s.Rec.Gauge("dpd.deleted", float64(s.Deleted-del0))
	s.Rec.Gauge("dpd.parallel", float64(s.workers()))

	if s.Watch != nil {
		s.Watch.ObserveParticles(len(s.Particles))
		s.guardParticles()
	}
}

// guardParticles scans particle positions and velocities for NaN/Inf,
// reporting the first corrupted particle as a critical nan-guard event
// (latched: a wedged ensemble trips once, not once per step). Only called
// when the watchdog bundle is attached.
func (s *System) guardParticles() {
	for i := range s.Particles {
		p := &s.Particles[i]
		for _, v := range [...]float64{p.Pos.X, p.Pos.Y, p.Pos.Z, p.Vel.X, p.Vel.Y, p.Vel.Z} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				s.Watch.GuardValue("dpd.step", "particle", v, i) //nolint:errcheck // event recorded; VVStep has no error path
				return
			}
		}
	}
}

// Run advances n steps.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.VVStep()
	}
}

// TotalMomentum sums m v over mobile particles.
func (s *System) TotalMomentum() geometry.Vec3 {
	var p geometry.Vec3
	for i := range s.Particles {
		if !s.Particles[i].Frozen {
			p = p.Add(s.Particles[i].Vel)
		}
	}
	return p
}

// Temperature returns the instantaneous kinetic temperature
// <m v²>/3 over mobile particles, relative to the local mean velocity of the
// whole system (assumes no macroscopic flow; use binned measurements in
// flowing systems).
func (s *System) Temperature() float64 {
	var n int
	var mean geometry.Vec3
	for i := range s.Particles {
		if !s.Particles[i].Frozen {
			mean = mean.Add(s.Particles[i].Vel)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	mean = mean.Scale(1 / float64(n))
	var ke float64
	for i := range s.Particles {
		if !s.Particles[i].Frozen {
			ke += s.Particles[i].Vel.Sub(mean).Norm2()
		}
	}
	return ke / (3 * float64(n))
}

// MobileCount returns the number of non-frozen particles — the population
// TotalMomentum and Temperature average over.
func (s *System) MobileCount() int {
	var n int
	for i := range s.Particles {
		if !s.Particles[i].Frozen {
			n++
		}
	}
	return n
}

// NumberDensity returns N/V over mobile particles.
func (s *System) NumberDensity() float64 {
	var n int
	for i := range s.Particles {
		if !s.Particles[i].Frozen {
			n++
		}
	}
	return float64(n) / s.Volume()
}
