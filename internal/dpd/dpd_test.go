package dpd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nektarg/internal/geometry"
)

func periodicFluid(t *testing.T, n int, l float64) *System {
	t.Helper()
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: l, Y: l, Z: l}, [3]bool{true, true, true})
	s.FillRandom(n, 0)
	return s
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams(2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams(2)
	bad.A[0][1] = 30 // asymmetric
	if err := bad.Validate(); err == nil {
		t.Fatal("expected symmetry error")
	}
	bad2 := DefaultParams(1)
	bad2.Dt = 0
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected dt error")
	}
}

func TestPairXiSymmetricAndBounded(t *testing.T) {
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := pairXi(7, uint64(i), 3, 11)
		y := pairXi(7, uint64(i), 11, 3)
		if x != y {
			t.Fatal("xi not symmetric in particle ids")
		}
		if math.Abs(x) > math.Sqrt(3)+1e-12 {
			t.Fatalf("xi out of range: %v", x)
		}
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("xi mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("xi variance = %v", variance)
	}
}

func TestMomentumConservationPeriodic(t *testing.T) {
	s := periodicFluid(t, 500, 5)
	// Zero the net momentum first.
	p0 := s.TotalMomentum().Scale(1 / 500.0)
	for i := range s.Particles {
		s.Particles[i].Vel = s.Particles[i].Vel.Sub(p0)
	}
	s.Run(50)
	p := s.TotalMomentum()
	if p.Norm() > 1e-9 {
		t.Fatalf("momentum drifted: %v", p)
	}
}

func TestThermostatEquilibrium(t *testing.T) {
	// Start cold; the random/dissipative pair must drive the system to kBT.
	p := DefaultParams(1)
	p.KBT = 1
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 5, Y: 5, Z: 5}, [3]bool{true, true, true})
	s.FillRandom(375, 0) // rho = 3
	for i := range s.Particles {
		s.Particles[i].Vel = geometry.Vec3{}
	}
	s.Run(300)
	// Average temperature over a window.
	var tAvg float64
	const win = 50
	for i := 0; i < win; i++ {
		s.Run(2)
		tAvg += s.Temperature()
	}
	tAvg /= win
	if math.Abs(tAvg-1) > 0.1 {
		t.Fatalf("temperature = %v want ~1", tAvg)
	}
}

func TestDeterministicUnderParallelism(t *testing.T) {
	run := func(workers int) []geometry.Vec3 {
		p := DefaultParams(1)
		s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 6}, [3]bool{true, true, true})
		s.Parallel = workers
		s.FillRandom(400, 0)
		s.Run(20)
		out := make([]geometry.Vec3, len(s.Particles))
		for i := range s.Particles {
			out[i] = s.Particles[i].Pos
		}
		return out
	}
	a := run(1)
	b := run(4)
	if len(a) != len(b) {
		t.Fatalf("particle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Sub(b[i]).Norm() > 1e-12 {
			t.Fatalf("particle %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlaneWallNoPenetration(t *testing.T) {
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 5, Y: 5, Z: 3}, [3]bool{true, true, false})
	s.Walls = []Wall{
		&PlaneWall{Point: geometry.Vec3{Z: 0}, Norm: geometry.Vec3{Z: 1}},
		&PlaneWall{Point: geometry.Vec3{Z: 3}, Norm: geometry.Vec3{Z: -1}},
	}
	s.FillRandom(225, 0)
	s.Run(100)
	for i := range s.Particles {
		z := s.Particles[i].Pos.Z
		if z < -1e-9 || z > 3+1e-9 {
			t.Fatalf("particle escaped: z = %v", z)
		}
	}
}

func TestCouetteLinearProfile(t *testing.T) {
	// Top wall moving at U drives a linear shear profile.
	p := DefaultParams(1)
	p.Dt = 0.005
	uWall := 1.0
	lz := 4.0
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: lz}, [3]bool{true, true, false})
	s.Walls = []Wall{
		&PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&PlaneWall{Point: geometry.Vec3{Z: lz}, Norm: geometry.Vec3{Z: -1}, WallVel: geometry.Vec3{X: uWall}},
	}
	s.FillRandom(int(3*6*6*lz), 0)
	s.Run(1500)
	bins := NewBinGrid(geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: lz}, 1, 1, 8)
	for i := 0; i < 800; i++ {
		s.Run(1)
		bins.Accumulate(s)
	}
	mean := bins.MeanVelocity()
	// Profile must increase monotonically-ish from ~0 at bottom to ~uWall
	// at top; check ends and the mid-slope.
	bottom := mean[0].X
	top := mean[7].X
	if bottom > 0.3*uWall {
		t.Fatalf("slip at bottom wall: u = %v", bottom)
	}
	if top < 0.6*uWall {
		t.Fatalf("top layer not dragged: u = %v", top)
	}
	mid := mean[4].X
	if mid < 0.2*uWall || mid > 0.9*uWall {
		t.Fatalf("mid profile u = %v not between walls", mid)
	}
}

func TestPoiseuilleBodyForceProfile(t *testing.T) {
	// Body-force-driven flow between plates: parabolic profile with zero
	// wall velocity and centerline max.
	p := DefaultParams(1)
	p.Dt = 0.005
	lz := 4.0
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: lz}, [3]bool{true, true, false})
	s.Walls = []Wall{
		&PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&PlaneWall{Point: geometry.Vec3{Z: lz}, Norm: geometry.Vec3{Z: -1}},
	}
	s.External = func(_ float64, _ *Particle) geometry.Vec3 {
		return geometry.Vec3{X: 0.05}
	}
	s.FillRandom(int(3*6*6*lz), 0)
	s.Run(1500)
	bins := NewBinGrid(geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: lz}, 1, 1, 8)
	for i := 0; i < 800; i++ {
		s.Run(1)
		bins.Accumulate(s)
	}
	mean := bins.MeanVelocity()
	center := (mean[3].X + mean[4].X) / 2
	edge := (mean[0].X + mean[7].X) / 2
	if center <= 2*edge || center <= 0 {
		t.Fatalf("profile not parabolic: edge %v center %v", edge, center)
	}
	// Symmetry about the centerline within statistical noise.
	if math.Abs(mean[1].X-mean[6].X) > 0.5*center {
		t.Fatalf("asymmetric profile: %v vs %v", mean[1].X, mean[6].X)
	}
}

func TestInflowOutflowMaintainsDensity(t *testing.T) {
	// Open channel: inflow at x=0, outflow at x=Lx. After transients, the
	// particle count stays near the target density.
	p := DefaultParams(1)
	p.Dt = 0.005
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 8, Y: 4, Z: 4}, [3]bool{false, true, true})
	uIn := 0.5
	s.Inflows = []*FluxBC{
		{Axis: 0, AtMax: false, Rho: 3, Vel: func(geometry.Vec3) geometry.Vec3 {
			return geometry.Vec3{X: uIn}
		}},
		{Axis: 0, AtMax: true, Rho: 3}, // outflow: reservoir follows local velocity
	}
	s.FillRandom(int(3*8*4*4), 0)
	// Give every particle the mean drift so flow starts developed.
	for i := range s.Particles {
		s.Particles[i].Vel.X += uIn
	}
	n0 := len(s.Particles)
	s.Run(600)
	n1 := len(s.Particles)
	if math.Abs(float64(n1-n0))/float64(n0) > 0.15 {
		t.Fatalf("density drifted: %d -> %d", n0, n1)
	}
	// Net flux through the domain must be positive (flow through).
	var ux float64
	var cnt int
	for i := range s.Particles {
		ux += s.Particles[i].Vel.X
		cnt++
	}
	if ux/float64(cnt) < 0.1*uIn {
		t.Fatalf("through-flow died: mean ux = %v", ux/float64(cnt))
	}
}

func TestCylinderWallKeepsParticlesInside(t *testing.T) {
	p := DefaultParams(1)
	r := 2.0
	s := NewSystem(p, geometry.Vec3{X: -2.5, Y: -2.5, Z: 0}, geometry.Vec3{X: 2.5, Y: 2.5, Z: 5}, [3]bool{false, false, true})
	s.Walls = []Wall{&CylinderWall{Center: geometry.Vec3{}, Radius: r}}
	// Seed only inside the cylinder.
	for len(s.Particles) < 300 {
		pos := geometry.Vec3{
			X: (s.rng.Float64() - 0.5) * 2 * r,
			Y: (s.rng.Float64() - 0.5) * 2 * r,
			Z: s.rng.Float64() * 5,
		}
		if math.Hypot(pos.X, pos.Y) < 0.95*r {
			s.AddParticle(pos, geometry.Vec3{}, 0, false)
		}
	}
	s.Run(200)
	for i := range s.Particles {
		pp := s.Particles[i].Pos
		if math.Hypot(pp.X, pp.Y) > r+1e-9 {
			t.Fatalf("particle left the pipe: r = %v", math.Hypot(pp.X, pp.Y))
		}
	}
}

func TestBinGridGeometry(t *testing.T) {
	b := NewBinGrid(geometry.Vec3{}, geometry.Vec3{X: 2, Y: 2, Z: 2}, 2, 2, 2)
	if b.NumBins() != 8 {
		t.Fatalf("bins = %d", b.NumBins())
	}
	if n := b.binOf(geometry.Vec3{X: 0.5, Y: 0.5, Z: 0.5}); n != 0 {
		t.Fatalf("bin = %d", n)
	}
	if n := b.binOf(geometry.Vec3{X: 1.5, Y: 1.5, Z: 1.5}); n != 7 {
		t.Fatalf("bin = %d", n)
	}
	if n := b.binOf(geometry.Vec3{X: -1}); n != -1 {
		t.Fatalf("outside bin = %d", n)
	}
	c := b.BinCenter(7)
	if c.Sub(geometry.Vec3{X: 1.5, Y: 1.5, Z: 1.5}).Norm() > 1e-12 {
		t.Fatalf("center = %v", c)
	}
}

func TestSnapshotResetsWindow(t *testing.T) {
	s := periodicFluid(t, 100, 4)
	b := NewBinGrid(geometry.Vec3{}, geometry.Vec3{X: 4, Y: 4, Z: 4}, 2, 2, 2)
	b.Accumulate(s)
	first := b.Snapshot()
	second := b.Snapshot()
	var nonzero bool
	for _, v := range first {
		if v.Norm() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("first snapshot empty")
	}
	for _, v := range second {
		if v.Norm() != 0 {
			t.Fatal("window not reset")
		}
	}
}

func TestSampleVelocityAt(t *testing.T) {
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 4, Y: 4, Z: 4}, [3]bool{true, true, true})
	s.AddParticle(geometry.Vec3{X: 1, Y: 1, Z: 1}, geometry.Vec3{X: 2}, 0, false)
	s.AddParticle(geometry.Vec3{X: 1.2, Y: 1, Z: 1}, geometry.Vec3{X: 4}, 0, false)
	s.AddParticle(geometry.Vec3{X: 3, Y: 3, Z: 3}, geometry.Vec3{X: 100}, 0, false)
	v, n := s.SampleVelocityAt(geometry.Vec3{X: 1.1, Y: 1, Z: 1}, 0.5)
	if n != 2 {
		t.Fatalf("n = %d", n)
	}
	if math.Abs(v.X-3) > 1e-12 {
		t.Fatalf("v = %v", v)
	}
}

func TestTemperatureOfColdSystemIsZero(t *testing.T) {
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 2, Y: 2, Z: 2}, [3]bool{true, true, true})
	s.AddParticle(geometry.Vec3{X: 1, Y: 1, Z: 1}, geometry.Vec3{X: 5}, 0, false)
	// Single particle moving uniformly: no thermal motion about the mean.
	if tt := s.Temperature(); tt != 0 {
		t.Fatalf("T = %v", tt)
	}
}

func TestNumberDensityExcludesFrozen(t *testing.T) {
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 1, Y: 1, Z: 1}, [3]bool{true, true, true})
	s.AddParticle(geometry.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, geometry.Vec3{}, 0, false)
	s.AddParticle(geometry.Vec3{X: 0.2, Y: 0.2, Z: 0.2}, geometry.Vec3{}, 0, true)
	if rho := s.NumberDensity(); rho != 1 {
		t.Fatalf("rho = %v", rho)
	}
}

func TestVirialPressureMatchesGrootWarren(t *testing.T) {
	// Equilibrium standard fluid: the virial pressure must match the
	// Groot-Warren equation of state P = rho kBT + 0.101 a rho^2.
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 6}, [3]bool{true, true, true})
	s.FillRandom(648, 0) // rho = 3
	s.Run(300)
	var sum float64
	const samples = 40
	for i := 0; i < samples; i++ {
		s.Run(3)
		sum += s.VirialPressure()
	}
	got := sum / samples
	want := GrootWarrenPressure(25, 3, 1)
	if math.Abs(got-want)/want > 0.08 {
		t.Fatalf("pressure = %v, Groot-Warren EOS = %v", got, want)
	}
}

func TestVirialPressureScalesWithRepulsion(t *testing.T) {
	measure := func(a float64) float64 {
		p := DefaultParams(1)
		p.A[0][0] = a
		s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 5, Y: 5, Z: 5}, [3]bool{true, true, true})
		s.FillRandom(375, 0)
		s.Run(200)
		var sum float64
		for i := 0; i < 20; i++ {
			s.Run(3)
			sum += s.VirialPressure()
		}
		return sum / 20
	}
	p15 := measure(15)
	p50 := measure(50)
	if p50 <= p15 {
		t.Fatalf("pressure must grow with a: %v vs %v", p15, p50)
	}
}

func TestRadialDistributionStructure(t *testing.T) {
	// Equilibrated standard fluid: soft-core depletion at r->0, g ~ 1 far
	// away.
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 6}, [3]bool{true, true, true})
	s.FillRandom(648, 0)
	s.Run(300)
	nbins := 30
	g := make([]float64, nbins)
	const samples = 10
	for it := 0; it < samples; it++ {
		s.Run(5)
		gi := s.RadialDistribution(2.5, nbins)
		for k := range g {
			g[k] += gi[k] / samples
		}
	}
	// Soft core: strongly depleted (U(0) = a rc/2 = 12.5 kBT for the
	// standard fluid) yet without a hard-sphere exclusion shell.
	if g[1] > 0.3 {
		t.Fatalf("core g = %v (want strong depletion)", g[1])
	}
	// Long range: ideal-gas limit.
	tail := (g[nbins-1] + g[nbins-2]) / 2
	if math.Abs(tail-1) > 0.1 {
		t.Fatalf("tail g = %v want ~1", tail)
	}
	// Monotone rise out of the core, then the first coordination shell
	// just inside rc: a peak above 1 (soft liquids order weakly).
	if !(g[3] < g[6] && g[6] < g[9]) {
		t.Fatalf("no core-to-shell rise: g=%v", g[:12])
	}
	peak := 0.0
	for _, v := range g[8:13] {
		if v > peak {
			peak = v
		}
	}
	if peak < 1.02 || peak > 1.5 {
		t.Fatalf("first shell peak %v outside the soft-liquid band", peak)
	}
}

func TestRadialDistributionPanics(t *testing.T) {
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 4, Y: 4, Z: 4}, [3]bool{true, true, true})
	s.FillRandom(10, 0)
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { s.RadialDistribution(3, 10) }) // > half box
	mustPanic(func() { s.RadialDistribution(1, 0) })
}

func TestMinimumImageProperty(t *testing.T) {
	// |minimumImage(a,b)| <= |a-b| and each component within half box.
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 3, Y: 5, Z: 7}, [3]bool{true, true, true})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := geometry.Vec3{X: rng.Float64() * 3, Y: rng.Float64() * 5, Z: rng.Float64() * 7}
		b := geometry.Vec3{X: rng.Float64() * 3, Y: rng.Float64() * 5, Z: rng.Float64() * 7}
		d := s.minimumImage(a, b)
		if d.Norm() > a.Sub(b).Norm()+1e-12 {
			return false
		}
		return math.Abs(d.X) <= 1.5+1e-12 && math.Abs(d.Y) <= 2.5+1e-12 && math.Abs(d.Z) <= 3.5+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
