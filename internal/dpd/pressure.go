package dpd

import "math"

// VirialPressure returns the instantaneous pressure from the virial theorem,
//
//	P = ρ kBT_kin + (1/3V) Σ_{i<j} r_ij · F^C_ij,
//
// using the conservative pair force only (dissipative and random forces
// cancel in the ensemble). Groot & Warren's equation of state
// P ≈ ρ kBT + α a ρ² with α ≈ 0.101 is the standard validation of a DPD
// fluid implementation, and fixes the compressibility that the paper's
// blood-plasma parameterization relies on.
func (s *System) VirialPressure() float64 {
	s.buildCells()
	rc2 := s.Rc * s.Rc
	var virial float64
	// Serial half-shell sweep over all pairs (measurement path, not the
	// hot loop).
	for cz := 0; cz < s.ncell[2]; cz++ {
		for cy := 0; cy < s.ncell[1]; cy++ {
			for cx := 0; cx < s.ncell[0]; cx++ {
				home := cx + s.ncell[0]*(cy+s.ncell[1]*cz)
				for _, off := range halfShell {
					nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
					if !s.wrapCell(&nx, 0) || !s.wrapCell(&ny, 1) || !s.wrapCell(&nz, 2) {
						continue
					}
					nbr := nx + s.ncell[0]*(ny+s.ncell[1]*nz)
					if nbr == home && off != [3]int{0, 0, 0} {
						continue
					}
					same := off == [3]int{0, 0, 0}
					for i := s.heads[home]; i >= 0; i = s.next[i] {
						jStart := s.heads[nbr]
						if same {
							jStart = s.next[i]
						}
						for j := jStart; j >= 0; j = s.next[j] {
							pi := &s.Particles[i]
							pj := &s.Particles[j]
							if pi.Frozen && pj.Frozen {
								continue
							}
							d := s.minimumImage(pi.Pos, pj.Pos)
							r2 := d.Norm2()
							if r2 >= rc2 || r2 == 0 {
								continue
							}
							r := math.Sqrt(r2)
							fc := s.A[pi.Species][pj.Species] * (1 - r/s.Rc)
							// r_ij · F_ij = r * fc for a central force.
							virial += r * fc
						}
					}
				}
			}
		}
	}
	rho := s.NumberDensity()
	return rho*s.Temperature() + virial/(3*s.Volume())
}

// GrootWarrenPressure evaluates the reference equation of state
// P = ρ kBT + α a ρ² with α = 0.101.
func GrootWarrenPressure(a, rho, kBT float64) float64 {
	const alpha = 0.101
	return rho*kBT + alpha*a*rho*rho
}
