package dpd

import (
	"fmt"
	"math"

	"nektarg/internal/geometry"
)

// SDFWall is a triangulated wall baked into a signed-distance grid: the
// exact closest-triangle queries run once per grid sample at construction,
// and the hot per-particle-per-step path becomes a trilinear interpolation
// with finite-difference normals. This is how production particle codes make
// complex-geometry boundaries affordable (the paper's Feff "can be
// calculated during pre-processing").
type SDFWall struct {
	Lo, Hi  geometry.Vec3
	H       float64 // grid spacing
	n       [3]int  // samples per dimension
	d       []float64
	WallVel geometry.Vec3
}

// NewSDFWall samples the surface's signed distance over [lo, hi] at spacing
// h. Points outside the sampled box clamp to the boundary values, so the box
// should cover the whole fluid domain plus one cutoff.
func NewSDFWall(s *geometry.Surface, lo, hi geometry.Vec3, h float64) *SDFWall {
	if h <= 0 {
		panic(fmt.Sprintf("dpd: SDF spacing %v", h))
	}
	size := hi.Sub(lo)
	if size.X <= 0 || size.Y <= 0 || size.Z <= 0 {
		panic("dpd: empty SDF box")
	}
	tw := NewTriangulatedWall(s, math.Max(h, 4*h))
	w := &SDFWall{Lo: lo, Hi: hi, H: h}
	for d, v := range [3]float64{size.X, size.Y, size.Z} {
		w.n[d] = int(math.Ceil(v/h)) + 1
	}
	w.d = make([]float64, w.n[0]*w.n[1]*w.n[2])
	for k := 0; k < w.n[2]; k++ {
		for j := 0; j < w.n[1]; j++ {
			for i := 0; i < w.n[0]; i++ {
				p := geometry.Vec3{
					X: lo.X + float64(i)*h,
					Y: lo.Y + float64(j)*h,
					Z: lo.Z + float64(k)*h,
				}
				w.d[w.idx(i, j, k)] = tw.Distance(p)
			}
		}
	}
	return w
}

func (w *SDFWall) idx(i, j, k int) int { return i + w.n[0]*(j+w.n[1]*k) }

// sample interpolates the SDF trilinearly, clamping to the box.
func (w *SDFWall) sample(p geometry.Vec3) float64 {
	fx := (p.X - w.Lo.X) / w.H
	fy := (p.Y - w.Lo.Y) / w.H
	fz := (p.Z - w.Lo.Z) / w.H
	clamp := func(f float64, n int) (int, float64) {
		if f < 0 {
			return 0, 0
		}
		i := int(f)
		if i >= n-1 {
			return n - 2, 1
		}
		return i, f - float64(i)
	}
	i, tx := clamp(fx, w.n[0])
	j, ty := clamp(fy, w.n[1])
	k, tz := clamp(fz, w.n[2])
	var s float64
	for dk := 0; dk <= 1; dk++ {
		wz := tz
		if dk == 0 {
			wz = 1 - tz
		}
		for dj := 0; dj <= 1; dj++ {
			wy := ty
			if dj == 0 {
				wy = 1 - ty
			}
			for di := 0; di <= 1; di++ {
				wx := tx
				if di == 0 {
					wx = 1 - tx
				}
				s += wx * wy * wz * w.d[w.idx(i+di, j+dj, k+dk)]
			}
		}
	}
	return s
}

// Distance implements Wall.
func (w *SDFWall) Distance(p geometry.Vec3) float64 { return w.sample(p) }

// Normal implements Wall: the normalized SDF gradient (central differences).
func (w *SDFWall) Normal(p geometry.Vec3) geometry.Vec3 {
	e := w.H / 2
	g := geometry.Vec3{
		X: w.sample(geometry.Vec3{X: p.X + e, Y: p.Y, Z: p.Z}) - w.sample(geometry.Vec3{X: p.X - e, Y: p.Y, Z: p.Z}),
		Y: w.sample(geometry.Vec3{X: p.X, Y: p.Y + e, Z: p.Z}) - w.sample(geometry.Vec3{X: p.X, Y: p.Y - e, Z: p.Z}),
		Z: w.sample(geometry.Vec3{X: p.X, Y: p.Y, Z: p.Z + e}) - w.sample(geometry.Vec3{X: p.X, Y: p.Y, Z: p.Z - e}),
	}
	n := g.Norm()
	if n < 1e-12 {
		return geometry.Vec3{Z: 1}
	}
	return g.Scale(1 / n)
}

// Velocity implements Wall.
func (w *SDFWall) Velocity(geometry.Vec3) geometry.Vec3 { return w.WallVel }
