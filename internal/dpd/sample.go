package dpd

import (
	"fmt"

	"nektarg/internal/geometry"
)

// BinGrid averages particle velocities over spatial bins "of a size
// comparable to the cutoff radius rc" (§3.4); its snapshots feed both the
// continuum coupling and the WPOD analysis.
type BinGrid struct {
	Lo, Hi     geometry.Vec3
	Nx, Ny, Nz int

	count []float64
	sumU  []geometry.Vec3
	// snapshots accumulated over a sampling window of Nts steps
	windowCount []float64
	windowU     []geometry.Vec3
}

// NewBinGrid builds an empty bin grid over [lo, hi].
func NewBinGrid(lo, hi geometry.Vec3, nx, ny, nz int) *BinGrid {
	if nx < 1 || ny < 1 || nz < 1 {
		panic(fmt.Sprintf("dpd: bad bin grid %dx%dx%d", nx, ny, nz))
	}
	n := nx * ny * nz
	return &BinGrid{
		Lo: lo, Hi: hi, Nx: nx, Ny: ny, Nz: nz,
		count:       make([]float64, n),
		sumU:        make([]geometry.Vec3, n),
		windowCount: make([]float64, n),
		windowU:     make([]geometry.Vec3, n),
	}
}

// NumBins returns the bin count.
func (b *BinGrid) NumBins() int { return b.Nx * b.Ny * b.Nz }

// binOf returns the bin index of a position, or -1 when outside.
func (b *BinGrid) binOf(p geometry.Vec3) int {
	sz := b.Hi.Sub(b.Lo)
	fx := (p.X - b.Lo.X) / sz.X
	fy := (p.Y - b.Lo.Y) / sz.Y
	fz := (p.Z - b.Lo.Z) / sz.Z
	if fx < 0 || fx >= 1 || fy < 0 || fy >= 1 || fz < 0 || fz >= 1 {
		return -1
	}
	i := int(fx * float64(b.Nx))
	j := int(fy * float64(b.Ny))
	k := int(fz * float64(b.Nz))
	return i + b.Nx*(j+b.Ny*k)
}

// BinCenter returns the center position of bin n.
func (b *BinGrid) BinCenter(n int) geometry.Vec3 {
	i := n % b.Nx
	j := (n / b.Nx) % b.Ny
	k := n / (b.Nx * b.Ny)
	sz := b.Hi.Sub(b.Lo)
	return geometry.Vec3{
		X: b.Lo.X + (float64(i)+0.5)*sz.X/float64(b.Nx),
		Y: b.Lo.Y + (float64(j)+0.5)*sz.Y/float64(b.Ny),
		Z: b.Lo.Z + (float64(k)+0.5)*sz.Z/float64(b.Nz),
	}
}

// Accumulate folds the current particle velocities into both the long-run
// average and the current sampling window. Frozen particles are excluded.
func (b *BinGrid) Accumulate(s *System) {
	for i := range s.Particles {
		p := &s.Particles[i]
		if p.Frozen {
			continue
		}
		n := b.binOf(p.Pos)
		if n < 0 {
			continue
		}
		b.count[n]++
		b.sumU[n] = b.sumU[n].Add(p.Vel)
		b.windowCount[n]++
		b.windowU[n] = b.windowU[n].Add(p.Vel)
	}
}

// MeanVelocity returns the long-run average velocity per bin (zero where no
// samples landed): the "standard averaging" baseline of Figure 7.
func (b *BinGrid) MeanVelocity() []geometry.Vec3 {
	out := make([]geometry.Vec3, b.NumBins())
	for n := range out {
		if b.count[n] > 0 {
			out[n] = b.sumU[n].Scale(1 / b.count[n])
		}
	}
	return out
}

// Snapshot returns the window-averaged velocity field and resets the window;
// these are the WPOD snapshots ("velocity field snapshots are computed by
// sampling (averaging) data over short time-intervals, typically Nts =
// [50 500] time-steps").
func (b *BinGrid) Snapshot() []geometry.Vec3 {
	out := make([]geometry.Vec3, b.NumBins())
	for n := range out {
		if b.windowCount[n] > 0 {
			out[n] = b.windowU[n].Scale(1 / b.windowCount[n])
		}
		b.windowCount[n] = 0
		b.windowU[n] = geometry.Vec3{}
	}
	return out
}

// Component extracts one component (0=x,1=y,2=z) of a vector field.
func Component(field []geometry.Vec3, c int) []float64 {
	out := make([]float64, len(field))
	for i, v := range field {
		switch c {
		case 0:
			out[i] = v.X
		case 1:
			out[i] = v.Y
		default:
			out[i] = v.Z
		}
	}
	return out
}

// SampleVelocityAt estimates the local fluid velocity around a point by
// averaging mobile-particle velocities within radius rc. It is the DPD->
// continuum half of the interface exchange. Returns the count used.
func (s *System) SampleVelocityAt(p geometry.Vec3, radius float64) (geometry.Vec3, int) {
	var sum geometry.Vec3
	var n int
	r2 := radius * radius
	for i := range s.Particles {
		q := &s.Particles[i]
		if q.Frozen {
			continue
		}
		if s.minimumImage(q.Pos, p).Norm2() <= r2 {
			sum = sum.Add(q.Vel)
			n++
		}
	}
	if n > 0 {
		sum = sum.Scale(1 / float64(n))
	}
	return sum, n
}
