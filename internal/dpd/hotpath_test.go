package dpd

import (
	"math"
	"runtime"
	"testing"

	"nektarg/internal/geometry"
)

// TestForcesBitIdenticalAcrossWorkerCounts pins the fixed-tiling contract:
// every Parallel setting (including serial) produces byte-for-byte identical
// trajectories, because the accumulation tiling and merge order never depend
// on the worker count.
func TestForcesBitIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []Particle {
		p := DefaultParams(1)
		s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 6}, [3]bool{true, true, true})
		s.Parallel = workers
		s.forceTiles = 4 // force multi-tile merging even on single-core hosts
		s.FillRandom(400, 0)
		s.Run(15)
		return append([]Particle(nil), s.Particles...)
	}
	ref := run(1)
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: particle counts differ: %d vs %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Pos != ref[i].Pos || got[i].Vel != ref[i].Vel || got[i].F != ref[i].F {
				t.Fatalf("workers=%d: particle %d diverged:\n  serial %+v\n  tiled  %+v", workers, i, ref[i], got[i])
			}
		}
	}
}

// TestCaptureStateExcludesScratch pins the checkpoint contract of the force
// scratch: a system restored from a checkpoint taken mid-run (with dirty
// tile buffers, fOld, and cell lists) continues bit-identically to the
// uninterrupted run — scratch reuse leaks nothing across the round-trip.
func TestCaptureStateExcludesScratch(t *testing.T) {
	build := func() *System {
		p := DefaultParams(1)
		s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 5, Y: 5, Z: 5}, [3]bool{true, true, true})
		s.FillRandom(300, 0)
		return s
	}
	ref := build()
	ref.Run(10) // scratch is now thoroughly dirty
	st := ref.CaptureState()
	ref.Run(10)

	restored, err := RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	restored.Run(10)

	if len(restored.Particles) != len(ref.Particles) {
		t.Fatalf("particle counts differ: %d vs %d", len(restored.Particles), len(ref.Particles))
	}
	for i := range ref.Particles {
		a, b := ref.Particles[i], restored.Particles[i]
		if a.Pos != b.Pos || a.Vel != b.Vel || a.F != b.F {
			t.Fatalf("particle %d diverged after checkpoint round-trip:\n  direct   %+v\n  restored %+v", i, a, b)
		}
	}
}

// TestVVStepZeroAllocSteadyState pins the tentpole acceptance criterion:
// once warmed up, a closed-box dpd.System.Step allocates nothing.
func TestVVStepZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	for _, workers := range []int{1, 3} {
		p := DefaultParams(1)
		s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 5, Y: 5, Z: 5}, [3]bool{true, true, true})
		s.Parallel = workers
		s.forceTiles = 4 // multi-tile path even on single-core hosts
		s.FillRandom(200, 0)
		s.Run(3) // warm up scratch, tiles and worker pool
		allocs := testing.AllocsPerRun(10, func() { s.VVStep() })
		if allocs != 0 {
			t.Fatalf("Parallel=%d: VVStep allocated %.1f allocs/op in steady state, want 0", workers, allocs)
		}
		// The step must still do real physics under the guard.
		if s.Temperature() <= 0 || math.IsNaN(s.Temperature()) {
			t.Fatalf("Parallel=%d: degenerate temperature %v", workers, s.Temperature())
		}
	}
}
