//go:build race

package dpd

// raceEnabled reports that the race detector instruments this build; the
// zero-alloc guards skip then (instrumentation allocates).
const raceEnabled = true
