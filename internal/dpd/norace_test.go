//go:build !race

package dpd

// raceEnabled is false in uninstrumented builds; see race_test.go.
const raceEnabled = false
