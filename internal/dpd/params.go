// Package dpd implements the mesoscopic solver of the paper: dissipative
// particle dynamics (Hoogerbrugge-Koelman 1992; Groot-Warren 1997) with the
// extensions the in-house DPD-LAMMPS carried — multiple particle species,
// non-periodic boundary conditions for unsteady flows (no-slip walls via
// bounce-back plus effective boundary forces, inflow/outflow with particle
// insertion/deletion driven by local flux), deterministic parallel force
// evaluation, and field sampling for coupling and WPOD post-processing.
//
// Particles interact through three pairwise forces inside a cutoff rc:
//
//	F^C = a_ij (1 - r/rc) r̂                      (conservative)
//	F^D = -γ (1 - r/rc)² (r̂·v_ij) r̂             (dissipative)
//	F^R = σ (1 - r/rc) ξ r̂ / √dt,  σ² = 2γ kBT  (random)
//
// and move by Newton's second law, integrated with the DPD-adapted
// velocity-Verlet scheme (λ = 1/2). The random numbers are generated from a
// counter-based hash of (step, particle ids), making the force evaluation
// deterministic under any parallel schedule.
package dpd

import "fmt"

// Params holds the fluid model parameters.
type Params struct {
	// Rc is the interaction cutoff radius.
	Rc float64
	// A[s1][s2] is the conservative repulsion between species s1 and s2.
	A [][]float64
	// Gamma is the dissipative friction coefficient.
	Gamma float64
	// KBT is the thermostat target temperature (σ² = 2 γ kBT).
	KBT float64
	// Dt is the time step.
	Dt float64
	// Lambda is the velocity-Verlet velocity-prediction factor (0.5 is
	// Groot-Warren's choice).
	Lambda float64
	// Seed feeds the counter-based random force generator.
	Seed uint64
}

// DefaultParams returns the standard DPD fluid of Groot & Warren: a=25,
// γ=4.5, kBT=1, rc=1, number density ρ=3.
func DefaultParams(nspecies int) Params {
	a := make([][]float64, nspecies)
	for i := range a {
		a[i] = make([]float64, nspecies)
		for j := range a[i] {
			a[i][j] = 25
		}
	}
	return Params{
		Rc:     1,
		A:      a,
		Gamma:  4.5,
		KBT:    1,
		Dt:     0.01,
		Lambda: 0.5,
		Seed:   0x9e3779b97f4a7c15,
	}
}

// Validate checks parameter sanity.
func (p *Params) Validate() error {
	if p.Rc <= 0 {
		return fmt.Errorf("dpd: cutoff %v must be positive", p.Rc)
	}
	if p.Gamma < 0 || p.KBT < 0 {
		return fmt.Errorf("dpd: gamma %v and kBT %v must be non-negative", p.Gamma, p.KBT)
	}
	if p.Dt <= 0 {
		return fmt.Errorf("dpd: dt %v must be positive", p.Dt)
	}
	if len(p.A) == 0 {
		return fmt.Errorf("dpd: species matrix empty")
	}
	for i := range p.A {
		if len(p.A[i]) != len(p.A) {
			return fmt.Errorf("dpd: species matrix not square")
		}
		for j := range p.A[i] {
			if p.A[i][j] != p.A[j][i] {
				return fmt.Errorf("dpd: species matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	if p.Lambda <= 0 || p.Lambda > 1 {
		return fmt.Errorf("dpd: lambda %v out of (0,1]", p.Lambda)
	}
	return nil
}

// splitmix64 is the counter-based generator step for the random forces.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pairXi returns a zero-mean unit-variance random number for the (i, j) pair
// at the given step, symmetric in i and j. Uniform on [-√3, √3], which is
// sufficient for the DPD thermostat (Groot & Warren §II.C).
func pairXi(seed uint64, step uint64, id1, id2 int64) float64 {
	if id1 > id2 {
		id1, id2 = id2, id1
	}
	h := splitmix64(seed ^ splitmix64(step) ^ splitmix64(uint64(id1)<<32|uint64(uint32(id2))))
	const sqrt3 = 1.7320508075688772
	return (2*float64(h>>11)/float64(1<<53) - 1) * sqrt3
}
