package dpd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nektarg/internal/geometry"
)

func TestClosestPointOnTriangleRegions(t *testing.T) {
	tri := geometry.Triangle{
		A: geometry.Vec3{},
		B: geometry.Vec3{X: 1},
		C: geometry.Vec3{Y: 1},
	}
	cases := []struct {
		p, want geometry.Vec3
	}{
		{geometry.Vec3{X: 0.25, Y: 0.25, Z: 1}, geometry.Vec3{X: 0.25, Y: 0.25}}, // face
		{geometry.Vec3{X: -1, Y: -1, Z: 0}, geometry.Vec3{}},                     // vertex A
		{geometry.Vec3{X: 2, Y: -0.5, Z: 0}, geometry.Vec3{X: 1}},                // vertex B
		{geometry.Vec3{X: -0.5, Y: 2, Z: 0}, geometry.Vec3{Y: 1}},                // vertex C
		{geometry.Vec3{X: 0.5, Y: -1, Z: 0}, geometry.Vec3{X: 0.5}},              // edge AB
		{geometry.Vec3{X: -1, Y: 0.5, Z: 0}, geometry.Vec3{Y: 0.5}},              // edge AC
		{geometry.Vec3{X: 1, Y: 1, Z: 0}, geometry.Vec3{X: 0.5, Y: 0.5}},         // edge BC
	}
	for i, tc := range cases {
		got := closestPointOnTriangle(tri, tc.p)
		if got.Sub(tc.want).Norm() > 1e-12 {
			t.Fatalf("case %d: got %v want %v", i, got, tc.want)
		}
	}
}

func TestClosestPointIsActuallyClosest(t *testing.T) {
	// Property: the returned point is no farther than any barycentric
	// sample of the triangle.
	tri := geometry.Triangle{
		A: geometry.Vec3{X: 0.3, Y: -0.2, Z: 0.1},
		B: geometry.Vec3{X: 1.1, Y: 0.4, Z: -0.3},
		C: geometry.Vec3{X: -0.2, Y: 0.9, Z: 0.5},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geometry.Vec3{X: rng.NormFloat64() * 2, Y: rng.NormFloat64() * 2, Z: rng.NormFloat64() * 2}
		q := closestPointOnTriangle(tri, p)
		dq := p.Dist(q)
		for i := 0; i < 40; i++ {
			u := rng.Float64()
			v := rng.Float64() * (1 - u)
			sample := tri.A.Scale(1 - u - v).Add(tri.B.Scale(u)).Add(tri.C.Scale(v))
			if p.Dist(sample) < dq-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangulatedWallDistanceSign(t *testing.T) {
	// A planar rect at z=0 with normal +z: fluid above.
	s := geometry.PlanarRect("floor", geometry.Vec3{X: -2, Y: -2},
		geometry.Vec3{X: 4}, geometry.Vec3{Y: 4}, 4, 4)
	w := NewTriangulatedWall(s, 1.0)
	if d := w.Distance(geometry.Vec3{Z: 0.5}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("above: d = %v", d)
	}
	if d := w.Distance(geometry.Vec3{Z: -0.3}); math.Abs(d+0.3) > 1e-12 {
		t.Fatalf("below: d = %v", d)
	}
	n := w.Normal(geometry.Vec3{X: 0.3, Y: 0.1, Z: 0.4})
	if n.Sub(geometry.Vec3{Z: 1}).Norm() > 1e-9 {
		t.Fatalf("normal = %v", n)
	}
	// Behind the wall the normal still points toward the fluid.
	nb := w.Normal(geometry.Vec3{X: 0.3, Y: 0.1, Z: -0.4})
	if nb.Sub(geometry.Vec3{Z: 1}).Norm() > 1e-9 {
		t.Fatalf("behind-wall normal = %v", nb)
	}
}

func TestTriangulatedTubeConfinesParticles(t *testing.T) {
	// A triangulated pipe (normals flipped inward) must confine a DPD
	// fluid just like the analytic CylinderWall.
	r := 2.0
	tube := geometry.TubeSurface("pipe", r, -0.5, 5.5, 24, 6).Flip()
	w := NewTriangulatedWall(tube, 1.0)
	// Sanity: interior positive, exterior negative.
	if d := w.Distance(geometry.Vec3{Z: 2}); d < 1.9 || d > 2.1 {
		t.Fatalf("axis distance = %v", d)
	}
	if d := w.Distance(geometry.Vec3{X: 2.5, Z: 2}); d > -0.3 {
		t.Fatalf("outside distance = %v", d)
	}

	p := DefaultParams(1)
	p.Dt = 0.005
	sys := NewSystem(p, geometry.Vec3{X: -2.5, Y: -2.5, Z: 0}, geometry.Vec3{X: 2.5, Y: 2.5, Z: 5}, [3]bool{false, false, true})
	sys.Walls = []Wall{w}
	rng := rand.New(rand.NewSource(4))
	for len(sys.Particles) < 300 {
		pos := geometry.Vec3{
			X: (rng.Float64() - 0.5) * 2 * r,
			Y: (rng.Float64() - 0.5) * 2 * r,
			Z: rng.Float64() * 5,
		}
		if math.Hypot(pos.X, pos.Y) < 0.9*r {
			sys.AddParticle(pos, geometry.Vec3{}, 0, false)
		}
	}
	sys.Run(200)
	for i := range sys.Particles {
		pp := sys.Particles[i].Pos
		// The faceted tube's inscribed radius is slightly below r.
		if math.Hypot(pp.X, pp.Y) > r+0.05 {
			t.Fatalf("particle escaped the triangulated pipe: r = %v", math.Hypot(pp.X, pp.Y))
		}
	}
}

func TestTriangulatedWallMovingVelocity(t *testing.T) {
	s := geometry.PlanarRect("belt", geometry.Vec3{X: -1, Y: -1},
		geometry.Vec3{X: 2}, geometry.Vec3{Y: 2}, 2, 2)
	w := NewTriangulatedWall(s, 1.0)
	w.Vel = func(p geometry.Vec3) geometry.Vec3 { return geometry.Vec3{X: 2 * p.X} }
	v := w.Velocity(geometry.Vec3{X: 0.5, Y: 0, Z: 0.2})
	if math.Abs(v.X-1.0) > 1e-9 {
		t.Fatalf("wall velocity = %v", v)
	}
}

func TestNewTriangulatedWallPanics(t *testing.T) {
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewTriangulatedWall(&geometry.Surface{}, 1) })
	s := geometry.PlanarRect("x", geometry.Vec3{}, geometry.Vec3{X: 1}, geometry.Vec3{Y: 1}, 1, 1)
	mustPanic(func() { NewTriangulatedWall(s, 0) })
}

func TestSDFWallMatchesTriangulated(t *testing.T) {
	s := geometry.PlanarRect("floor", geometry.Vec3{X: -2, Y: -2},
		geometry.Vec3{X: 4}, geometry.Vec3{Y: 4}, 4, 4)
	tw := NewTriangulatedWall(s, 1.0)
	sdf := NewSDFWall(s, geometry.Vec3{X: -1.5, Y: -1.5, Z: -1}, geometry.Vec3{X: 1.5, Y: 1.5, Z: 1.5}, 0.1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		p := geometry.Vec3{
			X: (rng.Float64() - 0.5) * 2,
			Y: (rng.Float64() - 0.5) * 2,
			Z: (rng.Float64() - 0.5) * 2,
		}
		dExact := tw.Distance(p)
		dSDF := sdf.Distance(p)
		if math.Abs(dExact-dSDF) > 0.02 {
			t.Fatalf("at %v: exact %v, SDF %v", p, dExact, dSDF)
		}
	}
	// Normal of the flat floor: +z everywhere above.
	n := sdf.Normal(geometry.Vec3{X: 0.2, Y: 0.1, Z: 0.5})
	if n.Sub(geometry.Vec3{Z: 1}).Norm() > 0.05 {
		t.Fatalf("SDF normal = %v", n)
	}
}

func TestSDFWallConfinesParticles(t *testing.T) {
	r := 2.0
	tube := geometry.TubeSurface("pipe", r, -1, 6, 24, 7).Flip()
	sdf := NewSDFWall(tube,
		geometry.Vec3{X: -3, Y: -3, Z: -0.5},
		geometry.Vec3{X: 3, Y: 3, Z: 5.5}, 0.15)
	p := DefaultParams(1)
	p.Dt = 0.005
	sys := NewSystem(p, geometry.Vec3{X: -2.5, Y: -2.5, Z: 0}, geometry.Vec3{X: 2.5, Y: 2.5, Z: 5}, [3]bool{false, false, true})
	sys.Walls = []Wall{sdf}
	rng := rand.New(rand.NewSource(4))
	for len(sys.Particles) < 300 {
		pos := geometry.Vec3{
			X: (rng.Float64() - 0.5) * 2 * r,
			Y: (rng.Float64() - 0.5) * 2 * r,
			Z: rng.Float64() * 5,
		}
		if math.Hypot(pos.X, pos.Y) < 0.9*r {
			sys.AddParticle(pos, geometry.Vec3{}, 0, false)
		}
	}
	sys.Run(200)
	for i := range sys.Particles {
		pp := sys.Particles[i].Pos
		if math.Hypot(pp.X, pp.Y) > r+0.1 {
			t.Fatalf("particle escaped the SDF pipe: r = %v", math.Hypot(pp.X, pp.Y))
		}
	}
}

func TestSDFWallPanics(t *testing.T) {
	s := geometry.PlanarRect("x", geometry.Vec3{}, geometry.Vec3{X: 1}, geometry.Vec3{Y: 1}, 1, 1)
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { NewSDFWall(s, geometry.Vec3{}, geometry.Vec3{X: 1, Y: 1, Z: 1}, 0) })
	mustPanic(func() { NewSDFWall(s, geometry.Vec3{X: 1}, geometry.Vec3{}, 0.1) })
}
