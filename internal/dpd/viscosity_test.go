package dpd

import "testing"

func TestMeasureViscosityStandardFluid(t *testing.T) {
	if testing.Short() {
		t.Skip("long DPD run")
	}
	p := DefaultParams(1)
	p.Dt = 0.005
	nu, err := MeasureViscosity(p, 3, 0.05, 2500, 1500)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("standard fluid kinematic viscosity: %.3f", nu)
	// Groot-Warren's standard fluid (a=25, gamma=4.5, kBT=1, rho=3) has
	// eta ≈ 0.85, i.e. nu ≈ 0.28; accept a generous band for the
	// wall-model and statistical effects.
	if nu < 0.1 || nu > 0.8 {
		t.Fatalf("nu = %v outside the plausible band for the standard fluid", nu)
	}
}

func TestViscosityGrowsWithGamma(t *testing.T) {
	if testing.Short() {
		t.Skip("long DPD run")
	}
	base := DefaultParams(1)
	base.Dt = 0.005
	thick := DefaultParams(1)
	thick.Dt = 0.005
	thick.Gamma = 3 * base.Gamma
	nu1, err := MeasureViscosity(base, 3, 0.05, 2000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	nu2, err := MeasureViscosity(thick, 3, 0.05, 2000, 1200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("nu(gamma) = %.3f, nu(3*gamma) = %.3f", nu1, nu2)
	if nu2 <= nu1 {
		t.Fatalf("tripling gamma did not increase viscosity: %v vs %v", nu2, nu1)
	}
}

func TestMeasureViscosityRejectsBadInput(t *testing.T) {
	p := DefaultParams(1)
	if _, err := MeasureViscosity(p, 0, 0.1, 10, 10); err == nil {
		t.Fatal("rho=0 accepted")
	}
	bad := DefaultParams(1)
	bad.Dt = 0
	if _, err := MeasureViscosity(bad, 3, 0.1, 10, 10); err == nil {
		t.Fatal("invalid params accepted")
	}
}
