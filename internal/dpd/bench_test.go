package dpd

import (
	"fmt"
	"testing"

	"nektarg/internal/geometry"
)

// Kernel benchmarks for the DPD hot path: the tiled force evaluation and
// the full velocity-Verlet step. Named BenchmarkKernel* so scripts/bench.sh
// captures them in the "kernels" bundle section.

func benchSystem(n int, box float64) *System {
	p := DefaultParams(1)
	s := NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: box, Y: box, Z: box}, [3]bool{true, true, true})
	s.FillRandom(n, 0)
	s.Run(3) // warm up cell lists, tiles and scratch
	return s
}

func BenchmarkKernelForces(b *testing.B) {
	for _, n := range []int{600, 2400} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			box := 6.0
			if n > 1000 {
				box = 9.0
			}
			s := benchSystem(n, box)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ComputeForces()
			}
		})
	}
}

func BenchmarkKernelVVStep(b *testing.B) {
	s := benchSystem(600, 6.0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.VVStep()
	}
}
