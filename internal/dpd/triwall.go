package dpd

import (
	"fmt"
	"math"

	"nektarg/internal/geometry"
)

// TriangulatedWall imposes no-slip on an arbitrary triangulated surface —
// "the boundary of a DPD domain is discretized (e.g., triangulated) into
// small enough elements where local BC velocities are set". The fluid side
// is the side the triangle normals point into. Closest-triangle queries are
// accelerated by a uniform spatial hash over triangle bounding boxes.
type TriangulatedWall struct {
	Surf *geometry.Surface
	// Vel gives the wall velocity at a surface point (nil = rigid).
	Vel func(p geometry.Vec3) geometry.Vec3

	cellSize float64
	origin   geometry.Vec3
	dims     [3]int
	cells    map[int][]int32 // cell -> triangle indices
}

// NewTriangulatedWall indexes the surface for queries; cellSize should be on
// the order of the triangle size (and at least the interaction cutoff).
func NewTriangulatedWall(s *geometry.Surface, cellSize float64) *TriangulatedWall {
	if len(s.Triangles) == 0 {
		panic("dpd: empty wall surface")
	}
	if cellSize <= 0 {
		panic(fmt.Sprintf("dpd: wall cell size %v", cellSize))
	}
	b := s.Bounds()
	// Pad one cell so near-boundary queries stay in range.
	origin := b.Min.Sub(geometry.Vec3{X: cellSize, Y: cellSize, Z: cellSize})
	size := b.Max.Sub(origin).Add(geometry.Vec3{X: cellSize, Y: cellSize, Z: cellSize})
	w := &TriangulatedWall{
		Surf:     s,
		cellSize: cellSize,
		origin:   origin,
		cells:    map[int][]int32{},
	}
	for d, v := range [3]float64{size.X, size.Y, size.Z} {
		w.dims[d] = int(v/cellSize) + 1
	}
	for ti, tri := range s.Triangles {
		tb := tri.Bounds()
		lo := w.cellCoords(tb.Min)
		hi := w.cellCoords(tb.Max)
		for cz := lo[2]; cz <= hi[2]; cz++ {
			for cy := lo[1]; cy <= hi[1]; cy++ {
				for cx := lo[0]; cx <= hi[0]; cx++ {
					id := w.cellID(cx, cy, cz)
					w.cells[id] = append(w.cells[id], int32(ti))
				}
			}
		}
	}
	return w
}

func (w *TriangulatedWall) cellCoords(p geometry.Vec3) [3]int {
	rel := p.Sub(w.origin)
	c := [3]int{
		int(rel.X / w.cellSize),
		int(rel.Y / w.cellSize),
		int(rel.Z / w.cellSize),
	}
	for d := 0; d < 3; d++ {
		if c[d] < 0 {
			c[d] = 0
		}
		if c[d] >= w.dims[d] {
			c[d] = w.dims[d] - 1
		}
	}
	return c
}

func (w *TriangulatedWall) cellID(x, y, z int) int {
	return x + w.dims[0]*(y+w.dims[1]*z)
}

// closest returns the nearest surface point, its triangle index, and the
// distance, searching outward ring by ring from the query cell.
func (w *TriangulatedWall) closest(p geometry.Vec3) (geometry.Vec3, int, float64) {
	c := w.cellCoords(p)
	bestD := math.Inf(1)
	var bestPt geometry.Vec3
	bestT := -1
	maxRing := w.dims[0] + w.dims[1] + w.dims[2]
	for ring := 0; ring <= maxRing; ring++ {
		// Once a hit exists and the next ring cannot beat it, stop.
		if bestT >= 0 && float64(ring-1)*w.cellSize > bestD {
			break
		}
		found := false
		for cz := c[2] - ring; cz <= c[2]+ring; cz++ {
			if cz < 0 || cz >= w.dims[2] {
				continue
			}
			for cy := c[1] - ring; cy <= c[1]+ring; cy++ {
				if cy < 0 || cy >= w.dims[1] {
					continue
				}
				for cx := c[0] - ring; cx <= c[0]+ring; cx++ {
					if cx < 0 || cx >= w.dims[0] {
						continue
					}
					// Only the shell of the ring.
					if ring > 0 && abs(cx-c[0]) != ring && abs(cy-c[1]) != ring && abs(cz-c[2]) != ring {
						continue
					}
					tris, ok := w.cells[w.cellID(cx, cy, cz)]
					if !ok {
						continue
					}
					found = true
					for _, ti := range tris {
						q := closestPointOnTriangle(w.Surf.Triangles[ti], p)
						if d := p.Dist(q); d < bestD {
							bestD, bestPt, bestT = d, q, int(ti)
						}
					}
				}
			}
		}
		_ = found
	}
	return bestPt, bestT, bestD
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// closestPointOnTriangle returns the point of tri nearest to p (standard
// barycentric region walk, Ericson's algorithm).
func closestPointOnTriangle(tri geometry.Triangle, p geometry.Vec3) geometry.Vec3 {
	a, b, c := tri.A, tri.B, tri.C
	ab := b.Sub(a)
	ac := c.Sub(a)
	ap := p.Sub(a)
	d1 := ab.Dot(ap)
	d2 := ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return a
	}
	bp := p.Sub(b)
	d3 := ab.Dot(bp)
	d4 := ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return b
	}
	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return a.Add(ab.Scale(v))
	}
	cp := p.Sub(c)
	d5 := ab.Dot(cp)
	d6 := ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return c
	}
	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return a.Add(ac.Scale(w))
	}
	va := d3*d6 - d5*d4
	if va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return b.Add(c.Sub(b).Scale(w))
	}
	denom := 1 / (va + vb + vc)
	v := vb * denom
	w2 := vc * denom
	return a.Add(ab.Scale(v)).Add(ac.Scale(w2))
}

// Distance implements Wall: signed distance, positive on the fluid side (the
// side the triangle normals face).
func (w *TriangulatedWall) Distance(p geometry.Vec3) float64 {
	q, ti, d := w.closest(p)
	if ti < 0 {
		return math.Inf(1)
	}
	n := w.Surf.Triangles[ti].Normal()
	if p.Sub(q).Dot(n) < 0 {
		return -d
	}
	return d
}

// Normal implements Wall: direction from the closest surface point toward
// the fluid side.
func (w *TriangulatedWall) Normal(p geometry.Vec3) geometry.Vec3 {
	q, ti, d := w.closest(p)
	if ti < 0 {
		return geometry.Vec3{Z: 1}
	}
	n := w.Surf.Triangles[ti].UnitNormal()
	if d < 1e-12 {
		return n
	}
	dir := p.Sub(q).Scale(1 / d)
	if dir.Dot(n) < 0 {
		return dir.Scale(-1)
	}
	return dir
}

// Velocity implements Wall.
func (w *TriangulatedWall) Velocity(p geometry.Vec3) geometry.Vec3 {
	if w.Vel == nil {
		return geometry.Vec3{}
	}
	q, _, _ := w.closest(p)
	return w.Vel(q)
}
