// Package stats provides the statistical tooling used to post-process
// atomistic data: online moments, histograms/PDFs and a Gaussian reference —
// everything needed for the fluctuation analysis of Figure 7, where the PDF
// of streamwise velocity oscillations is compared against a Gaussian with
// σ ≈ 1.03.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Moments accumulates running mean and variance with Welford's algorithm,
// which stays accurate over the billions of samples a DPD run produces.
type Moments struct {
	n    int
	mean float64
	m2   float64
}

// Add folds a sample into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// AddAll folds a batch of samples.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// N returns the sample count.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Merge combines another accumulator into m (parallel reduction of
// per-replica statistics).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	mean := m.mean + d*float64(o.n)/float64(n)
	m2 := m.m2 + o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.n, m.mean, m.m2 = n, mean, m2
}

// Histogram is a uniform-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with nbins uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins < 1 || !(hi > lo) {
		panic(fmt.Sprintf("stats: bad histogram bounds [%v,%v) x %d", lo, hi, nbins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one sample. Out-of-range samples are tracked separately so the
// PDF normalization stays correct.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.under++
	case x >= h.Hi:
		h.over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against round-up at the boundary
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records a batch of samples.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of samples seen, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the number of samples below Lo and at/above Hi.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// BinCenters returns the midpoints of the bins.
func (h *Histogram) BinCenters() []float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	c := make([]float64, len(h.Counts))
	for i := range c {
		c[i] = h.Lo + (float64(i)+0.5)*w
	}
	return c
}

// PDF returns the empirical probability density (normalized so the bin-sum
// times bin-width is the in-range fraction of the mass).
func (h *Histogram) PDF() []float64 {
	p := make([]float64, len(h.Counts))
	if h.total == 0 {
		return p
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		p[i] = float64(c) / (float64(h.total) * w)
	}
	return p
}

// GaussianPDF evaluates the normal density with the given mean and sigma.
func GaussianPDF(x, mean, sigma float64) float64 {
	if sigma <= 0 {
		panic("stats: GaussianPDF needs sigma > 0")
	}
	z := (x - mean) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// L2PDFDistance returns the root-mean-square distance between the empirical
// PDF of h and the Gaussian(mean, sigma) density sampled at bin centers. It
// quantifies "the PDF is Gaussian" for Figure 7.
func (h *Histogram) L2PDFDistance(mean, sigma float64) float64 {
	pdf := h.PDF()
	centers := h.BinCenters()
	var s float64
	for i, p := range pdf {
		d := p - GaussianPDF(centers[i], mean, sigma)
		s += d * d
	}
	return math.Sqrt(s / float64(len(pdf)))
}

// Quantile returns the q-th quantile (0<=q<=1) of xs using linear
// interpolation; xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	i := int(pos)
	if i >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := pos - float64(i)
	return s[i]*(1-frac) + s[i+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RMS returns sqrt(mean(x^2)).
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// RMSE returns the root-mean-square error between two equal-length series.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

// Autocorrelation returns the normalized autocorrelation function of a
// series up to maxLag: ρ(k) = Cov(x_t, x_{t+k}) / Var(x). Used to find the
// decorrelation time of DPD samples so the WPOD window length Nts can be
// chosen to give nearly independent snapshots.
func Autocorrelation(xs []float64, maxLag int) []float64 {
	if maxLag < 0 || maxLag >= len(xs) {
		panic(fmt.Sprintf("stats: Autocorrelation lag %d for %d samples", maxLag, len(xs)))
	}
	mean := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	out := make([]float64, maxLag+1)
	if v == 0 {
		out[0] = 1
		return out
	}
	for k := 0; k <= maxLag; k++ {
		var c float64
		for t := 0; t+k < len(xs); t++ {
			c += (xs[t] - mean) * (xs[t+k] - mean)
		}
		out[k] = c / v
	}
	return out
}

// DecorrelationTime returns the first lag at which the autocorrelation drops
// below 1/e, or maxLag when it never does.
func DecorrelationTime(xs []float64, maxLag int) int {
	ac := Autocorrelation(xs, maxLag)
	for k, v := range ac {
		if v < 1/math.E {
			return k
		}
	}
	return maxLag
}
