package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMomentsAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 5
	}
	var m Moments
	m.AddAll(xs)
	// Direct two-pass computation.
	mean := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs) - 1)
	if math.Abs(m.Mean()-mean) > 1e-12 {
		t.Fatalf("mean %v vs %v", m.Mean(), mean)
	}
	if math.Abs(m.Variance()-v) > 1e-10 {
		t.Fatalf("var %v vs %v", m.Variance(), v)
	}
}

func TestMomentsMergeEqualsSequential(t *testing.T) {
	f := func(seed int64, n1, n2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, int(n1)+2)
		b := make([]float64, int(n2)+2)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		var ma, mb, mall Moments
		ma.AddAll(a)
		mb.AddAll(b)
		mall.AddAll(a)
		mall.AddAll(b)
		ma.Merge(&mb)
		return math.Abs(ma.Mean()-mall.Mean()) < 1e-10 &&
			math.Abs(ma.Variance()-mall.Variance()) < 1e-9 &&
			ma.N() == mall.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMomentsMergeEmpty(t *testing.T) {
	var a, b Moments
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("after merge: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("after reverse merge: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestHistogramPDFIntegratesToOne(t *testing.T) {
	h := NewHistogram(-5, 5, 100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		h.Add(rng.NormFloat64())
	}
	pdf := h.PDF()
	w := 10.0 / 100
	var total float64
	for _, p := range pdf {
		total += p * w
	}
	// Nearly all normal mass lies in [-5,5].
	if math.Abs(total-1) > 0.001 {
		t.Fatalf("pdf mass = %v", total)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.AddAll([]float64{-1, 0.5, 2, 1.0}) // 1.0 is outside the half-open range
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Fatalf("under=%d over=%d", under, over)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBoundaryBin(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0)        // first bin
	h.Add(0.999999) // last bin
	h.Add(0.25)     // second bin exactly on edge
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Counts[1] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
}

func TestGaussianPDFPeak(t *testing.T) {
	peak := GaussianPDF(0, 0, 1)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(peak-want) > 1e-14 {
		t.Fatalf("peak = %v want %v", peak, want)
	}
	if GaussianPDF(1, 0, 1) >= peak {
		t.Fatal("density should decrease away from mean")
	}
}

func TestGaussianFitDetection(t *testing.T) {
	// Samples from N(0, 1.03): L2 distance to the matching Gaussian must be
	// far smaller than to a badly mismatched one. This is the Fig 7 check.
	rng := rand.New(rand.NewSource(11))
	h := NewHistogram(-5, 5, 60)
	for i := 0; i < 200000; i++ {
		h.Add(rng.NormFloat64() * 1.03)
	}
	good := h.L2PDFDistance(0, 1.03)
	bad := h.L2PDFDistance(0, 2.5)
	if good >= bad/4 {
		t.Fatalf("gaussian fit not discriminating: good=%v bad=%v", good, bad)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestRMSAndRMSE(t *testing.T) {
	if got := RMS([]float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-14 {
		t.Fatalf("RMS = %v", got)
	}
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("RMSE identical = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-14 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("hist bounds", func() { NewHistogram(1, 1, 4) })
	mustPanic("hist bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("gauss sigma", func() { GaussianPDF(0, 0, 0) })
	mustPanic("quantile empty", func() { Quantile(nil, 0.5) })
	mustPanic("quantile range", func() { Quantile([]float64{1}, 1.5) })
	mustPanic("rmse len", func() { RMSE([]float64{1}, []float64{1, 2}) })
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ac := Autocorrelation(xs, 10)
	if ac[0] != 1 {
		t.Fatalf("rho(0) = %v", ac[0])
	}
	for k := 1; k <= 10; k++ {
		if math.Abs(ac[k]) > 0.05 {
			t.Fatalf("white noise rho(%d) = %v", k, ac[k])
		}
	}
	if d := DecorrelationTime(xs, 10); d != 1 {
		t.Fatalf("white-noise decorrelation time = %d", d)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with phi = 0.9: rho(k) = 0.9^k, decorrelation time ~ 10.
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 40000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.9*xs[i-1] + rng.NormFloat64()
	}
	ac := Autocorrelation(xs, 20)
	for _, k := range []int{1, 3, 6} {
		want := math.Pow(0.9, float64(k))
		if math.Abs(ac[k]-want) > 0.05 {
			t.Fatalf("rho(%d) = %v want %v", k, ac[k], want)
		}
	}
	d := DecorrelationTime(xs, 40)
	if d < 7 || d > 14 {
		t.Fatalf("AR(1) decorrelation time = %d, want ~10", d)
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	xs := []float64{2, 2, 2, 2}
	ac := Autocorrelation(xs, 2)
	if ac[0] != 1 || ac[1] != 0 {
		t.Fatalf("constant series ac = %v", ac)
	}
}

func TestAutocorrelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Autocorrelation([]float64{1, 2}, 5)
}
