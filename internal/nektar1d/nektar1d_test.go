package nektar1d

import (
	"math"
	"testing"
)

// Physiological-ish parameters in CGS-like units.
const (
	tA0   = 0.5   // cm^2
	tBeta = 4.0e4 // dyn/cm^3-ish stiffness
	tRho  = 1.06  // g/cm^3
	tKr   = 8.0   // friction
)

func restSegment(name string, n int) *Segment {
	return NewSegment(name, 10, n, tA0, tBeta, tRho, tKr)
}

func TestSegmentAtRestStaysAtRest(t *testing.T) {
	net := &Network{}
	s := net.AddSegment(restSegment("a", 41))
	net.Inlets = append(net.Inlets, &Inlet{Seg: s, Q: func(float64) float64 { return 0 }})
	net.Outlets = append(net.Outlets, &Outlet{Seg: s, WK: NewWindkessel(1e3, 1e-4)})
	if err := net.Run(200, 1e-4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.N; i++ {
		if math.Abs(s.A[i]-tA0) > 1e-9 || math.Abs(s.U[i]) > 1e-9 {
			t.Fatalf("node %d drifted: A=%v U=%v", i, s.A[i], s.U[i])
		}
	}
}

func TestWaveSpeedFormula(t *testing.T) {
	s := restSegment("a", 11)
	c := s.WaveSpeed(tA0)
	want := math.Sqrt(tBeta/(2*tRho)) * math.Pow(tA0, 0.25)
	if math.Abs(c-want) > 1e-12 {
		t.Fatalf("c = %v want %v", c, want)
	}
	if s.WaveSpeed(2*tA0) <= c {
		t.Fatal("wave speed must grow with area")
	}
}

func TestPressureTubeLaw(t *testing.T) {
	s := restSegment("a", 11)
	if p := s.Pressure(0); p != 0 {
		t.Fatalf("rest pressure = %v", p)
	}
	s.A[0] = 1.21 * tA0
	want := tBeta * (math.Sqrt(1.21*tA0) - math.Sqrt(tA0))
	if p := s.Pressure(0); math.Abs(p-want) > 1e-9 {
		t.Fatalf("p = %v want %v", p, want)
	}
}

func TestWindkesselDecay(t *testing.T) {
	wk := NewWindkessel(100, 1e-3) // tau = 0.1
	wk.P = 50
	dt := 1e-5
	steps := int(0.1 / dt) // one time constant
	for i := 0; i < steps; i++ {
		wk.Update(0, dt)
	}
	want := 50 * math.Exp(-1)
	if math.Abs(wk.P-want)/want > 0.01 {
		t.Fatalf("P = %v want %v", wk.P, want)
	}
}

func TestWindkesselChargesToRQ(t *testing.T) {
	wk := NewWindkessel(200, 1e-3)
	dt := 1e-5
	for i := 0; i < int(10*wk.TimeConstant()/dt); i++ {
		wk.Update(0.5, dt)
	}
	// Steady state: P = R*Q.
	if math.Abs(wk.P-100)/100 > 0.01 {
		t.Fatalf("P = %v want 100", wk.P)
	}
}

func TestPulsePropagatesAtWaveSpeed(t *testing.T) {
	// A short inflow pulse must travel down the tube at ~c0.
	net := &Network{}
	s := net.AddSegment(NewSegment("tube", 20, 201, tA0, tBeta, tRho, 0))
	net.Inlets = append(net.Inlets, &Inlet{Seg: s, Q: func(tm float64) float64 {
		if tm < 5e-4 {
			return 2 * math.Sin(math.Pi*tm/5e-4)
		}
		return 0
	}})
	net.Outlets = append(net.Outlets, &Outlet{Seg: s, WK: NewWindkessel(1e4, 1e-6)})
	c0 := s.WaveSpeed(tA0)
	dt := 0.2 * s.Dx() / c0
	// Travel to ~70% of the tube.
	target := 0.7 * s.L
	steps := int(target / c0 / dt)
	if err := net.Run(steps, dt); err != nil {
		t.Fatal(err)
	}
	// Locate the area peak.
	best, bestVal := 0, 0.0
	for i := 0; i < s.N; i++ {
		if d := s.A[i] - tA0; d > bestVal {
			best, bestVal = i, d
		}
	}
	if bestVal < 1e-6 {
		t.Fatal("pulse vanished")
	}
	got := float64(best) * s.Dx()
	if math.Abs(got-target)/target > 0.25 {
		t.Fatalf("pulse at %v cm, expected ~%v cm", got, target)
	}
}

func TestMassConservationInteriorOnly(t *testing.T) {
	// With zero boundary flux (closed-ish: zero inflow, huge outlet R), the
	// volume change over a step must match boundary fluxes to good accuracy.
	net := &Network{}
	s := net.AddSegment(NewSegment("tube", 10, 101, tA0, tBeta, tRho, 0))
	// Disturb the interior with a smooth bump (no net flow).
	for i := 0; i < s.N; i++ {
		x := float64(i) / float64(s.N-1)
		s.A[i] = tA0 * (1 + 0.05*math.Exp(-100*(x-0.5)*(x-0.5)))
	}
	net.Inlets = append(net.Inlets, &Inlet{Seg: s, Q: func(float64) float64 { return 0 }})
	net.Outlets = append(net.Outlets, &Outlet{Seg: s, WK: NewWindkessel(1e9, 1e-9)})
	v0 := s.Volume()
	dt := 1e-5
	var boundaryFlux float64
	for i := 0; i < 400; i++ {
		qin := s.Flow(0)
		qout := s.Flow(s.N - 1)
		if err := net.Step(dt); err != nil {
			t.Fatal(err)
		}
		boundaryFlux += dt * (qin - qout)
	}
	v1 := s.Volume()
	if math.Abs((v1-v0)-boundaryFlux) > 2e-4*v0 {
		t.Fatalf("dV = %v, boundary flux integral = %v", v1-v0, boundaryFlux)
	}
}

func bifurcationNetwork(t *testing.T, qIn func(float64) float64) (*Network, *Segment, *Segment, *Segment) {
	t.Helper()
	net := &Network{}
	parent := net.AddSegment(NewSegment("parent", 10, 81, tA0, tBeta, tRho, tKr))
	c1 := net.AddSegment(NewSegment("child1", 10, 81, tA0*0.6, tBeta, tRho, tKr))
	c2 := net.AddSegment(NewSegment("child2", 10, 81, tA0*0.6, tBeta, tRho, tKr))
	net.Inlets = append(net.Inlets, &Inlet{Seg: parent, Q: qIn})
	net.Junctions = append(net.Junctions, &Junction{Parent: parent, Children: []*Segment{c1, c2}})
	net.Outlets = append(net.Outlets,
		&Outlet{Seg: c1, WK: NewWindkessel(2e3, 1e-5)},
		&Outlet{Seg: c2, WK: NewWindkessel(2e3, 1e-5)},
	)
	return net, parent, c1, c2
}

func TestBifurcationConservesMassAndPressure(t *testing.T) {
	net, parent, c1, c2 := bifurcationNetwork(t, func(tm float64) float64 {
		return 1.5 * (1 - math.Exp(-tm/1e-3)) // smooth ramp to steady flow
	})
	dt := 2e-5
	if err := net.Run(4000, dt); err != nil {
		t.Fatal(err)
	}
	qp := parent.Flow(parent.N - 1)
	q1 := c1.Flow(0)
	q2 := c2.Flow(0)
	if math.Abs(qp-(q1+q2)) > 1e-8*(1+math.Abs(qp)) {
		t.Fatalf("mass not conserved: %v vs %v + %v", qp, q1, q2)
	}
	pp := parent.Pressure(parent.N - 1)
	p1 := c1.Pressure(0)
	p2 := c2.Pressure(0)
	if math.Abs(pp-p1) > 1e-6*(1+math.Abs(pp)) || math.Abs(pp-p2) > 1e-6*(1+math.Abs(pp)) {
		t.Fatalf("pressure not continuous: %v %v %v", pp, p1, p2)
	}
	// Symmetric children must split the flow evenly.
	if math.Abs(q1-q2) > 1e-6*(1+math.Abs(q1)) {
		t.Fatalf("asymmetric split: %v vs %v", q1, q2)
	}
}

func TestBifurcationSteadyFlowReachesOutlets(t *testing.T) {
	net, parent, _, _ := bifurcationNetwork(t, func(tm float64) float64 {
		return 1.0 * (1 - math.Exp(-tm/1e-3))
	})
	// Low outlet resistance keeps the network's compliance-resistance time
	// constant well below the simulated horizon.
	for _, o := range net.Outlets {
		o.WK.R = 100
	}
	dt := 2e-5
	// Wave transit over both generations is ~0.17 s; run 0.8 s so several
	// reflections settle the network to steady state.
	if err := net.Run(90000, dt); err != nil {
		t.Fatal(err)
	}
	// In steady state total outlet flow equals the inlet flow.
	qin := parent.Flow(0)
	qout := net.TotalOutletFlow()
	if math.Abs(qin-qout)/qin > 0.05 {
		t.Fatalf("steady state not reached: in %v out %v", qin, qout)
	}
}

func TestCFLGuard(t *testing.T) {
	net := &Network{}
	s := net.AddSegment(restSegment("a", 11))
	net.Inlets = append(net.Inlets, &Inlet{Seg: s, Q: func(float64) float64 { return 0 }})
	net.Outlets = append(net.Outlets, &Outlet{Seg: s, WK: NewWindkessel(1e3, 1e-4)})
	if err := net.Step(10); err == nil {
		t.Fatal("expected CFL violation error")
	}
}

func TestSegmentPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSegment("bad", 1, 2, tA0, tBeta, tRho, 0)
}

func TestWindkesselPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindkessel(0, 1)
}
