package nektar1d

import (
	"math"
	"strings"
	"testing"
)

// pulsedNetwork builds a one-segment tree driven by a pulsatile inlet into a
// windkessel outlet — the minimal wiring where both the (A, U) fields and the
// RC capacitor pressure evolve, so a resume that loses either is caught.
func pulsedNetwork() *Network {
	net := &Network{}
	s := net.AddSegment(restSegment("root", 41))
	net.Inlets = append(net.Inlets, &Inlet{Seg: s, Q: func(t float64) float64 {
		return 2 * math.Sin(2*math.Pi*10*t) * math.Exp(-t)
	}})
	net.Outlets = append(net.Outlets, &Outlet{Seg: s, WK: NewWindkessel(100, 1e-4)})
	return net
}

// TestNetworkResumeIsBitIdentical is the windkessel-pressure regression: a
// network restored from CaptureState and stepped m more times must match a
// straight n+m run bit-for-bit. The pre-checkpoint code omitted Windkessel.P
// from the captured state, so the peripheral impedance silently snapped back
// to t = 0 on resume — close enough to look plausible, wrong enough to break
// restart determinism.
func TestNetworkResumeIsBitIdentical(t *testing.T) {
	const dt = 1e-4
	const n, m = 300, 200

	straight := pulsedNetwork()
	if err := straight.Run(n+m, dt); err != nil {
		t.Fatal(err)
	}

	first := pulsedNetwork()
	if err := first.Run(n, dt); err != nil {
		t.Fatal(err)
	}
	st := first.CaptureState()
	if st.OutletP[0] == 0 {
		t.Fatal("windkessel never charged; the scenario does not exercise the regression")
	}

	resumed := pulsedNetwork() // fresh wiring, as a restart rebuilds it from code
	if err := resumed.ApplyState(st); err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(m, dt); err != nil {
		t.Fatal(err)
	}

	ws, wr := straight.Segments[0], resumed.Segments[0]
	for i := 0; i < ws.N; i++ {
		if ws.A[i] != wr.A[i] || ws.U[i] != wr.U[i] {
			t.Fatalf("node %d diverged after resume: A %v vs %v, U %v vs %v",
				i, wr.A[i], ws.A[i], wr.U[i], ws.U[i])
		}
	}
	if got, want := resumed.Outlets[0].WK.P, straight.Outlets[0].WK.P; got != want {
		t.Fatalf("windkessel pressure diverged after resume: %v want %v", got, want)
	}
	if resumed.Time != straight.Time || resumed.Steps != straight.Steps {
		t.Fatalf("clock diverged: t=%v steps=%d want t=%v steps=%d",
			resumed.Time, resumed.Steps, straight.Time, straight.Steps)
	}
}

// TestCaptureStateIsDeepCopy: mutating the live network after capture must
// not reach into the bundle (and vice versa) — a shallow capture would make
// every checkpoint in a retention window alias the newest state.
func TestCaptureStateIsDeepCopy(t *testing.T) {
	net := pulsedNetwork()
	if err := net.Run(50, 1e-4); err != nil {
		t.Fatal(err)
	}
	st := net.CaptureState()
	a0, u0, p0 := st.Segments[0].A[3], st.Segments[0].U[3], st.OutletP[0]
	if err := net.Run(50, 1e-4); err != nil {
		t.Fatal(err)
	}
	if st.Segments[0].A[3] != a0 || st.Segments[0].U[3] != u0 || st.OutletP[0] != p0 {
		t.Fatal("captured state aliases the live network")
	}
}

// TestApplyStateRejectsMismatchedTopology: every name/shape mismatch between
// a bundle and the rebuilt wiring is a loud error before any mutation.
func TestApplyStateRejectsMismatchedTopology(t *testing.T) {
	base := pulsedNetwork()
	if err := base.Run(10, 1e-4); err != nil {
		t.Fatal(err)
	}
	good := base.CaptureState()

	cases := []struct {
		name    string
		mutate  func(*NetworkState)
		target  func() *Network
		errPart string
	}{
		{"renamed segment", func(st *NetworkState) { st.Segments[0].Name = "ghost" },
			pulsedNetwork, `"ghost" not in network`},
		{"node count", func(st *NetworkState) { st.Segments[0].A = st.Segments[0].A[:10] },
			pulsedNetwork, "nodes"},
		{"missing windkessel pressures", func(st *NetworkState) { st.OutletP = nil },
			pulsedNetwork, "windkessel pressures"},
		{"segment count", func(st *NetworkState) { st.Segments = nil },
			pulsedNetwork, "segments"},
	}
	for _, tc := range cases {
		st := good
		st.Segments = append([]SegmentState(nil), good.Segments...)
		st.OutletP = append([]float64(nil), good.OutletP...)
		tc.mutate(&st)
		err := tc.target().ApplyState(st)
		if err == nil {
			t.Errorf("%s: ApplyState accepted a mismatched bundle", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}

	// And the unmutated bundle still applies cleanly.
	if err := pulsedNetwork().ApplyState(good); err != nil {
		t.Fatalf("clean bundle rejected: %v", err)
	}
}
