package nektar1d

import (
	"fmt"
	"math"

	"nektarg/internal/linalg"
	"nektarg/internal/monitor"
	"nektarg/internal/telemetry"
)

// Windkessel is the lumped RC outflow model the paper couples to every
// outlet: a peripheral resistance R in parallel with a compliance C. The
// capacitor pressure P is the outlet pressure; C dP/dt = Q - P/R.
type Windkessel struct {
	R, C float64
	P    float64
}

// NewWindkessel builds an RC element at zero pressure.
func NewWindkessel(r, c float64) *Windkessel {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("nektar1d: windkessel needs R,C > 0, got %v %v", r, c))
	}
	return &Windkessel{R: r, C: c}
}

// Update advances the capacitor pressure under inflow q over dt.
func (w *Windkessel) Update(q, dt float64) {
	w.P += dt * (q - w.P/w.R) / w.C
}

// TimeConstant returns RC.
func (w *Windkessel) TimeConstant() float64 { return w.R * w.C }

// Inlet prescribes volumetric inflow Q(t) at a segment's x=0 boundary.
type Inlet struct {
	Seg *Segment
	Q   func(t float64) float64
}

// Outlet terminates a segment's x=L boundary with a windkessel.
type Outlet struct {
	Seg *Segment
	WK  *Windkessel
}

// Junction joins the end of Parent to the starts of Children with pressure
// continuity and mass conservation (a bifurcation for two children, a simple
// connection for one).
type Junction struct {
	Parent   *Segment
	Children []*Segment
}

// Network is a tree of segments with boundary devices.
type Network struct {
	Segments  []*Segment
	Inlets    []*Inlet
	Outlets   []*Outlet
	Junctions []*Junction
	Time      float64
	Steps     int

	// InVol and OutVol integrate the realized boundary fluxes: ∫Q dt over
	// every inlet and outlet (including windkessel terminals), using the
	// post-solve boundary states so the bookkeeping matches what the scheme
	// actually admitted and discharged. V(t) − InVol + OutVol is then a
	// discrete invariant up to truncation error — the quantity the physics
	// audit ledger watches as the network's mass balance.
	InVol  float64
	OutVol float64

	// Rec is the optional per-rank telemetry recorder; nil (the default)
	// disables the 1d.* spans at nil-receiver no-op cost.
	Rec *telemetry.Recorder

	// Watch is the optional solver watchdog bundle: Step feeds the network's
	// worst CFL number to the cfl-watch (warn near the stability limit,
	// critical past it) and guards the (A, U) state against NaN/Inf. Nil
	// disables all probes.
	Watch *monitor.Watchdogs
}

// AddSegment registers a segment.
func (n *Network) AddSegment(s *Segment) *Segment {
	n.Segments = append(n.Segments, s)
	return s
}

// Step advances the whole network by dt. It returns an error if the CFL
// bound is violated or a junction solve fails.
func (n *Network) Step(dt float64) error {
	sp := n.Rec.Begin("1d.step")
	defer sp.End()
	var worstCFL float64
	for _, s := range n.Segments {
		cfl := s.MaxCFL(dt)
		if cfl > worstCFL {
			worstCFL = cfl
		}
		if cfl > 1 {
			n.Watch.ObserveCFL("1d.step", cfl, 1)
			return fmt.Errorf("nektar1d: CFL %0.2f > 1 on segment %q", cfl, s.Name)
		}
	}
	n.Watch.ObserveCFL("1d.step", worstCFL, 1)
	// Interior update into fresh buffers.
	newA := make(map[*Segment][]float64, len(n.Segments))
	newU := make(map[*Segment][]float64, len(n.Segments))
	for _, s := range n.Segments {
		a := make([]float64, s.N)
		u := make([]float64, s.N)
		s.interiorStep(dt, a, u)
		newA[s], newU[s] = a, u
	}

	// Inlets: prescribed Q with backward characteristic from the interior.
	for _, in := range n.Inlets {
		s := in.Seg
		w2 := s.charMinus(s.A[1], s.U[1])
		q := in.Q(n.Time + dt)
		a, u, err := solveInletQ(s, q, w2)
		if err != nil {
			return fmt.Errorf("nektar1d: inlet on %q: %w", s.Name, err)
		}
		newA[s][0], newU[s][0] = a, u
	}

	// Outlets: windkessel pressure coupled implicitly with the forward
	// characteristic. The explicit splitting is unstable for stiff RC
	// parameters (loop gain dt/C · dq/dP can exceed 1), so we Newton-solve
	//   P = P_old + dt (q(P) - P/R)/C,  q(P) = a(P) (w1 - 4 c(a(P)))
	// for the new capacitor pressure.
	for _, out := range n.Outlets {
		s := out.Seg
		last := s.N - 1
		w1 := s.charPlus(s.A[last-1], s.U[last-1])
		p, a, u, err := solveOutletWK(s, out.WK, w1, dt)
		if err != nil {
			return fmt.Errorf("nektar1d: outlet on %q: %w", s.Name, err)
		}
		out.WK.P = p
		newA[s][last], newU[s][last] = a, u
	}

	// Junctions: Newton solve for pressure continuity + mass conservation.
	for _, j := range n.Junctions {
		if err := j.solve(newA, newU); err != nil {
			return err
		}
	}

	for _, s := range n.Segments {
		copy(s.A, newA[s])
		copy(s.U, newU[s])
	}
	// NaN/Inf guard over the updated (A, U) state: a tripped guard aborts
	// the step with a structured health event instead of advancing garbage.
	if n.Watch != nil {
		for _, s := range n.Segments {
			if err := n.Watch.GuardField("1d.step", s.Name+".A", s.A); err != nil {
				return err
			}
			if err := n.Watch.GuardField("1d.step", s.Name+".U", s.U); err != nil {
				return err
			}
		}
	}
	for _, in := range n.Inlets {
		s := in.Seg
		n.InVol += dt * s.A[0] * s.U[0]
	}
	for _, out := range n.Outlets {
		s := out.Seg
		n.OutVol += dt * s.A[s.N-1] * s.U[s.N-1]
	}
	n.Time += dt
	n.Steps++
	return nil
}

// Run advances nSteps steps of size dt.
func (n *Network) Run(nSteps int, dt float64) error {
	sp := n.Rec.Begin("1d.run")
	defer sp.End()
	for i := 0; i < nSteps; i++ {
		if err := n.Step(dt); err != nil {
			return fmt.Errorf("step %d: %w", n.Steps, err)
		}
	}
	return nil
}

// solveInletQ finds (a, u) at the inlet with a*u = q and backward invariant
// u - 4c(a) = w2, by Newton iteration on a.
func solveInletQ(s *Segment, q, w2 float64) (float64, float64, error) {
	a := s.A[0]
	if a <= 0 {
		a = s.A0
	}
	for iter := 0; iter < 60; iter++ {
		c := s.WaveSpeed(a)
		f := q/a - (w2 + 4*c)
		dcda := c / (4 * a)
		df := -q/(a*a) - 4*dcda
		da := f / df
		aNew := a - da
		if aNew < 1e-10*s.A0 {
			aNew = a / 2
		}
		if math.Abs(aNew-a) < 1e-14*s.A0 {
			a = aNew
			break
		}
		a = aNew
	}
	u := q / a
	if math.IsNaN(a) || math.IsNaN(u) {
		return 0, 0, fmt.Errorf("inlet Newton diverged (q=%v w2=%v)", q, w2)
	}
	return a, u, nil
}

// solveOutletWK finds the new windkessel pressure P and the boundary state
// (a, u) satisfying the backward-Euler windkessel update and the forward
// characteristic simultaneously.
func solveOutletWK(s *Segment, wk *Windkessel, w1, dt float64) (p, a, u float64, err error) {
	g := dt / wk.C
	p = wk.P
	eval := func(p float64) (f, df, a, u float64) {
		sq := p/s.Beta + math.Sqrt(s.A0)
		if sq < 1e-9 {
			sq = 1e-9
		}
		a = sq * sq
		c := s.WaveSpeed(a)
		u = w1 - 4*c
		q := a * u
		dadp := 2 * sq / s.Beta
		dcdp := c / (4 * a) * dadp
		dqdp := dadp*u - 4*a*dcdp
		f = p - wk.P - g*(q-p/wk.R)
		df = 1 - g*(dqdp-1/wk.R)
		return f, df, a, u
	}
	for iter := 0; iter < 80; iter++ {
		f, df, aa, uu := eval(p)
		a, u = aa, uu
		dp := f / df
		p -= dp
		if math.Abs(dp) < 1e-12*(1+math.Abs(p)) {
			break
		}
	}
	_, _, a, u = eval(p)
	if math.IsNaN(p) || math.IsNaN(a) || math.IsNaN(u) {
		return 0, 0, 0, fmt.Errorf("windkessel Newton diverged (w1=%v)", w1)
	}
	return p, a, u, nil
}

// solve matches the junction branches: unknowns (a_b, u_b) for the parent
// end and each child start; equations are the outgoing/incoming Riemann
// invariants, mass conservation and pressure continuity.
func (j *Junction) solve(newA, newU map[*Segment][]float64) error {
	m := len(j.Children)
	if m < 1 {
		return fmt.Errorf("nektar1d: junction of %q has no children", j.Parent.Name)
	}
	nb := m + 1
	nu := 2 * nb // unknowns: a_0..a_m, u_0..u_m

	segs := make([]*Segment, nb)
	segs[0] = j.Parent
	copy(segs[1:], j.Children)

	// Characteristic targets from the interior (old time level).
	w := make([]float64, nb)
	p := j.Parent
	w[0] = p.charPlus(p.A[p.N-2], p.U[p.N-2])
	for b, c := range j.Children {
		w[b+1] = c.charMinus(c.A[1], c.U[1])
	}

	// Initial guess: current boundary values.
	x := make([]float64, nu)
	x[0] = p.A[p.N-1]
	x[nb] = p.U[p.N-1]
	for b, c := range j.Children {
		x[1+b] = c.A[0]
		x[nb+1+b] = c.U[0]
	}

	for iter := 0; iter < 80; iter++ {
		f := make([]float64, nu)
		jac := linalg.NewDense(nu, nu)
		// Characteristic equations.
		for b := 0; b < nb; b++ {
			a, u := x[b], x[nb+b]
			c := segs[b].WaveSpeed(a)
			dcda := c / (4 * a)
			if b == 0 {
				f[b] = u + 4*c - w[b]
				jac.Set(b, b, 4*dcda)
			} else {
				f[b] = u - 4*c - w[b]
				jac.Set(b, b, -4*dcda)
			}
			jac.Set(b, nb+b, 1)
		}
		// Mass conservation: a0 u0 - sum ab ub = 0.
		row := nb
		f[row] = x[0] * x[nb]
		jac.Set(row, 0, x[nb])
		jac.Set(row, nb, x[0])
		for b := 1; b < nb; b++ {
			f[row] -= x[b] * x[nb+b]
			jac.Set(row, b, -x[nb+b])
			jac.Set(row, nb+b, -x[b])
		}
		// Pressure continuity: p0(a0) - pb(ab) = 0 for each child.
		for b := 1; b < nb; b++ {
			row := nb + b
			p0 := segs[0].Beta * (math.Sqrt(x[0]) - math.Sqrt(segs[0].A0))
			pb := segs[b].Beta * (math.Sqrt(x[b]) - math.Sqrt(segs[b].A0))
			f[row] = p0 - pb
			jac.Set(row, 0, segs[0].Beta/(2*math.Sqrt(x[0])))
			jac.Set(row, b, -segs[b].Beta/(2*math.Sqrt(x[b])))
		}

		var norm float64
		for _, v := range f {
			norm += v * v
		}
		if math.Sqrt(norm) < 1e-12 {
			break
		}
		dx, err := linalg.SolveLU(jac, f)
		if err != nil {
			return fmt.Errorf("nektar1d: junction at %q: %w", j.Parent.Name, err)
		}
		for i := range x {
			x[i] -= dx[i]
		}
		for b := 0; b < nb; b++ {
			if x[b] <= 0 || math.IsNaN(x[b]) {
				return fmt.Errorf("nektar1d: junction at %q: negative area in Newton", j.Parent.Name)
			}
		}
	}

	newA[p][p.N-1], newU[p][p.N-1] = x[0], x[nb]
	for b, c := range j.Children {
		newA[c][0], newU[c][0] = x[1+b], x[nb+1+b]
	}
	return nil
}

// TotalOutletFlow sums the instantaneous flow leaving through all outlets.
func (n *Network) TotalOutletFlow() float64 {
	var q float64
	for _, o := range n.Outlets {
		q += o.Seg.Flow(o.Seg.N - 1)
	}
	return q
}

// TotalVolume sums segment volumes.
func (n *Network) TotalVolume() float64 {
	var v float64
	for _, s := range n.Segments {
		v += s.Volume()
	}
	return v
}
