package nektar1d

import "fmt"

// SegmentState is the resumable state of one arterial segment: its (A, U)
// node arrays. Geometry and material parameters (L, N, A0, β, ρ, Kr) are
// code-side configuration, revalidated on apply.
type SegmentState struct {
	Name string
	A, U []float64
}

// NetworkState is the serializable part of a Network: per-segment (A, U)
// fields, the windkessel capacitor pressure of every RC outlet (in outlet
// order), and the solver clock. The tree topology, inlet flow closures and
// windkessel parameters are code, rebuilt by the caller; ApplyState overlays
// the checkpointed physics onto that wiring. Omitting the windkessel
// pressures — the pre-checkpoint behaviour — silently resets the peripheral
// impedance to t = 0 on resume, which is exactly the bug this type fixes.
type NetworkState struct {
	Segments []SegmentState
	// OutletP holds Windkessel.P per outlet, in Outlets order.
	OutletP []float64
	Time    float64
	Steps   int
	// InVol and OutVol carry the boundary-flux integrals behind the mass
	// audit (see Network.InVol); zero when decoded from pre-audit
	// checkpoints, which re-bases the balance at resume time.
	InVol  float64
	OutVol float64
}

// CaptureState deep-copies the resumable network state.
func (n *Network) CaptureState() NetworkState {
	st := NetworkState{Time: n.Time, Steps: n.Steps, InVol: n.InVol, OutVol: n.OutVol}
	st.Segments = make([]SegmentState, len(n.Segments))
	for i, s := range n.Segments {
		st.Segments[i] = SegmentState{
			Name: s.Name,
			A:    append([]float64(nil), s.A...),
			U:    append([]float64(nil), s.U...),
		}
	}
	st.OutletP = make([]float64, len(n.Outlets))
	for i, o := range n.Outlets {
		st.OutletP[i] = o.WK.P
	}
	return st
}

// ApplyState overlays a captured state onto a network whose topology and
// boundary devices are already built. Segments are matched by name and must
// agree in node count; the outlet count must match the checkpoint.
func (n *Network) ApplyState(st NetworkState) error {
	if len(st.Segments) != len(n.Segments) {
		return fmt.Errorf("nektar1d: applying state: %d segments, checkpoint has %d",
			len(n.Segments), len(st.Segments))
	}
	byName := make(map[string]*Segment, len(n.Segments))
	for _, s := range n.Segments {
		if _, dup := byName[s.Name]; dup {
			return fmt.Errorf("nektar1d: applying state: duplicate segment name %q", s.Name)
		}
		byName[s.Name] = s
	}
	seen := make(map[string]bool, len(st.Segments))
	for _, ss := range st.Segments {
		s, ok := byName[ss.Name]
		if !ok {
			return fmt.Errorf("nektar1d: applying state: checkpoint segment %q not in network", ss.Name)
		}
		if seen[ss.Name] {
			return fmt.Errorf("nektar1d: applying state: checkpoint repeats segment %q", ss.Name)
		}
		seen[ss.Name] = true
		if len(ss.A) != s.N || len(ss.U) != s.N {
			return fmt.Errorf("nektar1d: applying state: segment %q has %d nodes, checkpoint carries %d/%d",
				ss.Name, s.N, len(ss.A), len(ss.U))
		}
	}
	if len(st.OutletP) != len(n.Outlets) {
		return fmt.Errorf("nektar1d: applying state: %d outlets, checkpoint has %d windkessel pressures",
			len(n.Outlets), len(st.OutletP))
	}
	// Validation done; now mutate.
	for _, ss := range st.Segments {
		s := byName[ss.Name]
		copy(s.A, ss.A)
		copy(s.U, ss.U)
	}
	for i, o := range n.Outlets {
		o.WK.P = st.OutletP[i]
	}
	n.Time = st.Time
	n.Steps = st.Steps
	n.InVol = st.InVol
	n.OutVol = st.OutVol
	return nil
}
