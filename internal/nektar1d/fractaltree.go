package nektar1d

import (
	"fmt"
	"math"
)

// TreeSpec parameterizes a self-similar peripheral arterial tree — the
// paper's mesovascular network (MeN): "small arteries and arterioles ...
// which follow a tree-like structure governed by specific fractal laws".
type TreeSpec struct {
	// Generations of symmetric bifurcations below the root (root counts as
	// generation 0); the tree has 2^Generations terminal segments.
	Generations int
	// RootArea and RootLength size the root segment.
	RootArea, RootLength float64
	// AreaExponent gamma sets the daughter/parent radius law
	// r_d = r_p / 2^{1/gamma}; gamma = 3 is Murray's law (cube law), so
	// the total daughter area expands by 2^{1-2/gamma} per generation.
	AreaExponent float64
	// LengthRatio scales segment length per generation (typically < 1).
	LengthRatio float64
	// Beta, Rho, Kr are the tube-law and fluid parameters of every
	// segment; NodesPerSegment the spatial resolution.
	Beta, Rho, Kr   float64
	NodesPerSegment int
	// TerminalR, TerminalC are the windkessel parameters of each terminal
	// outlet.
	TerminalR, TerminalC float64
}

// DefaultTreeSpec returns physiological-ish defaults for a g-generation
// tree.
func DefaultTreeSpec(generations int) TreeSpec {
	return TreeSpec{
		Generations:     generations,
		RootArea:        0.8,
		RootLength:      10,
		AreaExponent:    3, // Murray's law
		LengthRatio:     0.8,
		Beta:            4e4,
		Rho:             1.06,
		Kr:              8,
		NodesPerSegment: 41,
		TerminalR:       400,
		TerminalC:       2.5e-4,
	}
}

// BuildFractalTree constructs the network: a root segment with an inlet,
// Generations levels of symmetric bifurcations, and windkessel outlets at
// every terminal. The inlet's Q function is left nil for the caller to set.
func BuildFractalTree(spec TreeSpec) (*Network, *Inlet, error) {
	if spec.Generations < 0 {
		return nil, nil, fmt.Errorf("nektar1d: %d generations", spec.Generations)
	}
	if spec.AreaExponent <= 0 || spec.LengthRatio <= 0 {
		return nil, nil, fmt.Errorf("nektar1d: bad fractal ratios %+v", spec)
	}
	net := &Network{}
	// Daughter/parent area ratio per bifurcation, from the radius law.
	areaRatio := math.Pow(2, -2/spec.AreaExponent)

	var build func(name string, gen int, area, length float64) *Segment
	build = func(name string, gen int, area, length float64) *Segment {
		seg := net.AddSegment(NewSegment(name, length, spec.NodesPerSegment,
			area, spec.Beta, spec.Rho, spec.Kr))
		if gen == spec.Generations {
			net.Outlets = append(net.Outlets, &Outlet{
				Seg: seg,
				WK:  NewWindkessel(spec.TerminalR, spec.TerminalC),
			})
			return seg
		}
		childArea := area * areaRatio
		childLen := length * spec.LengthRatio
		left := build(name+"L", gen+1, childArea, childLen)
		right := build(name+"R", gen+1, childArea, childLen)
		net.Junctions = append(net.Junctions, &Junction{
			Parent:   seg,
			Children: []*Segment{left, right},
		})
		return seg
	}
	root := build("root", 0, spec.RootArea, spec.RootLength)
	inlet := &Inlet{Seg: root}
	net.Inlets = append(net.Inlets, inlet)
	return net, inlet, nil
}

// TotalResistance estimates the tree's steady Poiseuille resistance seen
// from the root (series segment resistances R = 8πμ_eff L/A² with
// μ_eff = Kr ρ / (8π) ... folded as R = ρ Kr L / A², combined through the
// symmetric bifurcations, terminated by the windkessel R).
func TotalResistance(spec TreeSpec) float64 {
	var level func(gen int, area, length float64) float64
	level = func(gen int, area, length float64) float64 {
		r := spec.Rho * spec.Kr * length / (area * area)
		if gen == spec.Generations {
			return r + spec.TerminalR
		}
		areaRatio := math.Pow(2, -2/spec.AreaExponent)
		child := level(gen+1, area*areaRatio, length*spec.LengthRatio)
		return r + child/2 // two identical children in parallel
	}
	return level(0, spec.RootArea, spec.RootLength)
}
