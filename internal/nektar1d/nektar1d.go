// Package nektar1d implements NεκTαr-1D: the nonlinear one-dimensional
// arterial blood-flow solver used for peripheral networks invisible to
// CT/MR imaging. It integrates the (A, U) system
//
//	∂A/∂t + ∂(AU)/∂x = 0
//	∂U/∂t + U ∂U/∂x + (1/ρ) ∂p/∂x = -Kr U/A
//
// with the elastic tube law p = β(√A − √A0), using a MacCormack
// predictor-corrector scheme, characteristic inlet/outlet treatment,
// RC-windkessel outflow boundaries and Newton-matched bifurcations
// (continuity of pressure and mass conservation).
package nektar1d

import (
	"fmt"
	"math"
)

// Segment is one arterial segment discretized with N uniformly spaced nodes.
type Segment struct {
	Name string
	L    float64 // length
	N    int
	A0   float64 // reference cross-section area
	Beta float64 // tube-law stiffness β
	Rho  float64 // blood density
	Kr   float64 // viscous friction coefficient

	A []float64 // cross-section area
	U []float64 // mean velocity
}

// NewSegment creates a segment at rest (A = A0, U = 0).
func NewSegment(name string, l float64, n int, a0, beta, rho, kr float64) *Segment {
	if n < 3 || l <= 0 || a0 <= 0 || beta <= 0 || rho <= 0 {
		panic(fmt.Sprintf("nektar1d: bad segment %q (L=%v N=%d A0=%v beta=%v rho=%v)", name, l, n, a0, beta, rho))
	}
	s := &Segment{Name: name, L: l, N: n, A0: a0, Beta: beta, Rho: rho, Kr: kr}
	s.A = make([]float64, n)
	s.U = make([]float64, n)
	for i := range s.A {
		s.A[i] = a0
	}
	return s
}

// Dx returns the grid spacing.
func (s *Segment) Dx() float64 { return s.L / float64(s.N-1) }

// Pressure returns the tube-law pressure at node i.
func (s *Segment) Pressure(i int) float64 {
	return s.Beta * (math.Sqrt(s.A[i]) - math.Sqrt(s.A0))
}

// WaveSpeed returns the local characteristic speed c = sqrt(β/(2ρ)) A^{1/4}.
func (s *Segment) WaveSpeed(a float64) float64 {
	return math.Sqrt(s.Beta/(2*s.Rho)) * math.Pow(a, 0.25)
}

// Flow returns the volumetric flow rate Q = A U at node i.
func (s *Segment) Flow(i int) float64 { return s.A[i] * s.U[i] }

// Volume returns the integrated segment volume (trapezoid rule).
func (s *Segment) Volume() float64 {
	dx := s.Dx()
	var v float64
	for i := 0; i < s.N-1; i++ {
		v += 0.5 * (s.A[i] + s.A[i+1]) * dx
	}
	return v
}

// charPlus evaluates the forward Riemann invariant W1 = U + 4c.
func (s *Segment) charPlus(a, u float64) float64 { return u + 4*s.WaveSpeed(a) }

// charMinus evaluates the backward Riemann invariant W2 = U - 4c.
func (s *Segment) charMinus(a, u float64) float64 { return u - 4*s.WaveSpeed(a) }

// fluxes computes the conservative fluxes F_A = AU and the momentum term
// F_U = U²/2 + p/ρ at node values (a, u).
func (s *Segment) fluxes(a, u float64) (fa, fu float64) {
	p := s.Beta * (math.Sqrt(a) - math.Sqrt(s.A0))
	return a * u, u*u/2 + p/s.Rho
}

// interiorStep advances the interior nodes with MacCormack; boundary nodes
// are filled by the network's characteristic treatment afterwards. aNew/uNew
// must have length N.
func (s *Segment) interiorStep(dt float64, aNew, uNew []float64) {
	n := s.N
	dx := s.Dx()
	r := dt / dx
	ap := make([]float64, n)
	up := make([]float64, n)
	// Predictor (forward differences).
	for i := 0; i < n-1; i++ {
		fa0, fu0 := s.fluxes(s.A[i], s.U[i])
		fa1, fu1 := s.fluxes(s.A[i+1], s.U[i+1])
		ap[i] = s.A[i] - r*(fa1-fa0)
		up[i] = s.U[i] - r*(fu1-fu0) - dt*s.Kr*s.U[i]/s.A[i]
	}
	ap[n-1] = s.A[n-1]
	up[n-1] = s.U[n-1]
	// Corrector (backward differences on predicted values).
	for i := 1; i < n-1; i++ {
		fa0, fu0 := s.fluxes(ap[i-1], up[i-1])
		fa1, fu1 := s.fluxes(ap[i], up[i])
		aNew[i] = 0.5*(s.A[i]+ap[i]) - 0.5*r*(fa1-fa0)
		uNew[i] = 0.5*(s.U[i]+up[i]) - 0.5*r*(fu1-fu0) - 0.5*dt*s.Kr*up[i]/ap[i]
	}
	aNew[0], uNew[0] = s.A[0], s.U[0]
	aNew[n-1], uNew[n-1] = s.A[n-1], s.U[n-1]
}

// MaxCFL returns the largest |U|+c over the segment times dt/dx; stability
// needs it below 1.
func (s *Segment) MaxCFL(dt float64) float64 {
	var m float64
	for i := 0; i < s.N; i++ {
		v := math.Abs(s.U[i]) + s.WaveSpeed(s.A[i])
		if v > m {
			m = v
		}
	}
	return m * dt / s.Dx()
}

// solveFromCharAndPressure finds (a, u) satisfying a given Riemann invariant
// (forward if fwd, else backward) and a target pressure: β(√a − √A0) = p.
func (s *Segment) solveFromCharAndPressure(w, p float64, fwd bool) (a, u float64) {
	sq := p/s.Beta + math.Sqrt(s.A0)
	if sq < 1e-12 {
		sq = 1e-12
	}
	a = sq * sq
	if fwd {
		u = w - 4*s.WaveSpeed(a)
	} else {
		u = w + 4*s.WaveSpeed(a)
	}
	return a, u
}
