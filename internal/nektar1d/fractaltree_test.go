package nektar1d

import (
	"math"
	"testing"
)

func TestFractalTreeTopology(t *testing.T) {
	for _, gen := range []int{0, 1, 2, 3} {
		spec := DefaultTreeSpec(gen)
		net, inlet, err := BuildFractalTree(spec)
		if err != nil {
			t.Fatal(err)
		}
		wantSegs := 1<<(gen+1) - 1
		if len(net.Segments) != wantSegs {
			t.Fatalf("gen %d: segments = %d want %d", gen, len(net.Segments), wantSegs)
		}
		if len(net.Outlets) != 1<<gen {
			t.Fatalf("gen %d: outlets = %d want %d", gen, len(net.Outlets), 1<<gen)
		}
		wantJunctions := 1<<gen - 1
		if len(net.Junctions) != wantJunctions {
			t.Fatalf("gen %d: junctions = %d want %d", gen, len(net.Junctions), wantJunctions)
		}
		if inlet.Seg.Name != "root" {
			t.Fatalf("inlet on %q", inlet.Seg.Name)
		}
	}
}

func TestFractalTreeMurraysLaw(t *testing.T) {
	// gamma = 3: r_d³ + r_d³ = r_p³, so A_d/A_p = 2^{-2/3}.
	spec := DefaultTreeSpec(2)
	net, _, err := BuildFractalTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Segment{}
	for _, s := range net.Segments {
		byName[s.Name] = s
	}
	ratio := byName["rootL"].A0 / byName["root"].A0
	want := math.Pow(2, -2.0/3)
	if math.Abs(ratio-want) > 1e-12 {
		t.Fatalf("area ratio = %v want %v", ratio, want)
	}
	// Total cross-section grows downstream (2 * 2^{-2/3} > 1), the
	// physiological velocity-slowing property.
	total0 := byName["root"].A0
	total1 := byName["rootL"].A0 + byName["rootR"].A0
	if total1 <= total0 {
		t.Fatalf("total area did not expand: %v -> %v", total0, total1)
	}
}

func TestFractalTreeRunsStably(t *testing.T) {
	spec := DefaultTreeSpec(3) // 15 segments
	spec.NodesPerSegment = 21
	net, inlet, err := BuildFractalTree(spec)
	if err != nil {
		t.Fatal(err)
	}
	inlet.Q = func(tm float64) float64 {
		return 2 * (1 - math.Exp(-tm/1e-3))
	}
	c0 := inlet.Seg.WaveSpeed(spec.RootArea)
	dt := 0.25 * inlet.Seg.Dx() / c0
	if err := net.Run(3000, dt); err != nil {
		t.Fatal(err)
	}
	// Flow reaches the terminals and splits evenly by symmetry.
	var qs []float64
	for _, o := range net.Outlets {
		qs = append(qs, o.Seg.Flow(o.Seg.N/2))
	}
	for i := 1; i < len(qs); i++ {
		if math.Abs(qs[i]-qs[0]) > 1e-6*(1+math.Abs(qs[0])) {
			t.Fatalf("asymmetric terminal flows: %v", qs)
		}
	}
	// Mass conservation at the root junction.
	root := inlet.Seg
	qRoot := root.Flow(root.N - 1)
	var qChildren float64
	for _, j := range net.Junctions {
		if j.Parent == root {
			for _, c := range j.Children {
				qChildren += c.Flow(0)
			}
		}
	}
	if math.Abs(qRoot-qChildren) > 1e-8*(1+math.Abs(qRoot)) {
		t.Fatalf("root junction leaks: %v vs %v", qRoot, qChildren)
	}
}

func TestTotalResistanceGrowsWithGenerations(t *testing.T) {
	// With Murray's law (area ratio 2^{-2/3}) the per-level series
	// resistance R ∝ L/A² shrinks by 0.8/0.63² ≈ 2.02 per branch but only
	// two branches share it, so each added generation contributes ≈ R_root
	// of extra input resistance — deeper (more arteriolar) trees present
	// HIGHER input resistance, the physiological fact that arterioles are
	// the main resistance vessels. The terminal windkessel bank halves per
	// generation but cannot offset that.
	r2 := TotalResistance(DefaultTreeSpec(2))
	r4 := TotalResistance(DefaultTreeSpec(4))
	if r2 <= 0 || r4 <= 0 {
		t.Fatalf("non-positive resistance: %v %v", r2, r4)
	}
	if r4 <= r2 {
		t.Fatalf("deeper tree should present higher input resistance: r2=%v r4=%v", r2, r4)
	}
	// The terminal bank effect in isolation: with zero viscous friction,
	// deeper trees must present LOWER resistance (pure parallelization).
	frictionless := DefaultTreeSpec(2)
	frictionless.Kr = 1e-9
	f2 := TotalResistance(frictionless)
	frictionless.Generations = 4
	f4 := TotalResistance(frictionless)
	if f4 >= f2 {
		t.Fatalf("frictionless deeper tree should parallelize: %v vs %v", f4, f2)
	}
}

func TestBuildFractalTreeRejectsBadSpec(t *testing.T) {
	spec := DefaultTreeSpec(2)
	spec.AreaExponent = 0
	if _, _, err := BuildFractalTree(spec); err == nil {
		t.Fatal("bad exponent accepted")
	}
	spec = DefaultTreeSpec(-1)
	if _, _, err := BuildFractalTree(spec); err == nil {
		t.Fatal("negative generations accepted")
	}
}

func TestJunctionConservationPropertyRandomTrees(t *testing.T) {
	// Property: for random (asymmetric) bifurcation geometries under steady
	// inflow, every junction conserves mass and pressure exactly.
	for seed := int64(1); seed <= 5; seed++ {
		rng := newRand(seed)
		net := &Network{}
		aP := 0.4 + 0.6*rng()
		a1 := aP * (0.3 + 0.4*rng())
		a2 := aP * (0.3 + 0.4*rng())
		parent := net.AddSegment(NewSegment("p", 8, 61, aP, tBeta, tRho, tKr))
		c1 := net.AddSegment(NewSegment("c1", 8, 61, a1, tBeta, tRho, tKr))
		c2 := net.AddSegment(NewSegment("c2", 8, 61, a2, tBeta, tRho, tKr))
		net.Inlets = append(net.Inlets, &Inlet{Seg: parent, Q: func(tm float64) float64 {
			return 1.2 * (1 - math.Exp(-tm/1e-3))
		}})
		net.Junctions = append(net.Junctions, &Junction{Parent: parent, Children: []*Segment{c1, c2}})
		net.Outlets = append(net.Outlets,
			&Outlet{Seg: c1, WK: NewWindkessel(300, 1e-5)},
			&Outlet{Seg: c2, WK: NewWindkessel(300, 1e-5)},
		)
		if err := net.Run(2500, 2e-5); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		qp := parent.Flow(parent.N - 1)
		q1 := c1.Flow(0)
		q2 := c2.Flow(0)
		if d := qp - (q1 + q2); d > 1e-8*(1+qp) || d < -1e-8*(1+qp) {
			t.Fatalf("seed %d: mass leak %v", seed, d)
		}
		pp := parent.Pressure(parent.N - 1)
		if d := pp - c1.Pressure(0); d > 1e-6*(1+pp) || d < -1e-6*(1+pp) {
			t.Fatalf("seed %d: pressure jump %v", seed, d)
		}
		// The wider child carries more flow.
		if (a1 > a2) != (q1 > q2) {
			t.Fatalf("seed %d: flow split does not follow area: a=(%v,%v) q=(%v,%v)", seed, a1, a2, q1, q2)
		}
	}
}

// newRand returns a tiny deterministic xorshift generator.
func newRand(seed int64) func() float64 {
	s := uint64(seed)*2654435761 + 1
	return func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1e9) / 1e9
	}
}
