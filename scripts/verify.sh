#!/bin/sh
# Tier-1 verification gate: vet, build, full test suite, then the race
# detector over the communication and coupling layers (whose ownership
# contracts the collective algorithms must uphold).
#
# Usage: scripts/verify.sh   (or: make verify)
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/mpi/... ./internal/mci/... ./internal/core/... ./internal/telemetry/... ./internal/monitor/... ./internal/checkpoint/... ./internal/insitu/... ./internal/fleet/... ./internal/audit/... ./internal/history/...

# Zero-cost-when-disabled guards: instrumentation on a nil recorder and
# watchdog probes on a nil bundle must allocate nothing and stay within a few
# ns/op (see telemetry/overhead_test.go and monitor/monitor_test.go).
go test -run TestDisabledPathNearZeroCost -count=1 ./internal/telemetry
go test -run TestMonitorDisabledZeroCost -count=1 ./internal/monitor
go test -run TestInsituDisabledZeroCost -count=1 ./internal/core
go test -run TestFleetDisabledZeroCost -count=1 ./internal/fleet
go test -run TestAuditDisabledZeroCost -count=1 ./internal/audit
go test -run TestHistoryDisabledZeroCost -count=1 ./internal/core

# Fault-injection smoke: a rank killed mid-run by the deterministic fault
# harness must dump flight telemetry, resume from the last good checkpoint
# and finish bit-identical to a fault-free run (the PR 4 acceptance test).
go test -run 'TestFaultKill|TestRecoveryFromInjectedRankKill|TestRestartDeterminism' -count=1 ./internal/mpi ./internal/core

# In-situ observation acceptance (PR 5): the drop-accounting conservation law
# over faulted and unfaulted coupled runs and the causal frame-assembly
# contract, under the race detector; plus the non-blocking guarantee — a
# deliberately stalled observer must not inflate solver step time.
go test -race -run 'TestCoupledConservation|TestStreamConservation|TestQueueConservation|TestAssemblerCausalConsistency' -count=1 ./internal/insitu
go test -run 'TestInsituNonBlockingStall' -count=1 ./internal/insitu

# Transport acceptance (PR 6). The two-transport conformance suite pins the
# point-to-point/collective/fault contract as identical over the in-process
# mailboxes and TCP loopback (the ./internal/mpi/... race run above already
# covers the tcptransport package); the Irecv regressions pin FIFO matching
# and goroutine-free abandonment; the distributed test kills a real OS
# process mid-run and requires a bit-identical auto-resume.
go test -race -run 'TestConformance|TestTCPPeerDeath' -count=1 ./internal/mpi/tcptransport
go test -race -run 'TestIrecvNonOvertaking|TestAbandonedIrecv' -count=1 ./internal/mpi
go test -run 'TestDistributedRecoverySurvivesProcessKill' -count=1 ./internal/core

# Cluster observability acceptance (PR 7). The transport stats tests pin the
# per-peer wire counters and the FIN-vs-EOF close taxonomy; the scrape test
# hammers /metrics and /healthz from scraper goroutines while a two-rank TCP
# world steps (under the race detector — scrapes read what the ranks write);
# the kill -9 acceptance requires the journal lineage, the healthz 503->200
# latch cycle, /events byte-stability and a violation-free merged trace.
go test -race -run 'TestTransportStats|TestStatsAddFoldsIncarnations' -count=1 ./internal/mpi/tcptransport
go test -race -run 'TestScrapeWhileWorldSteps' -count=1 ./internal/monitor
go test -run 'TestClusterObservabilitySurvivesProcessKill' -count=1 ./internal/core

# Physics audit acceptance (PR 8). An injected flux-BC fault in a coupled
# three-solver run must trip the gi.flux budget (before any NaN/CFL guard)
# while the unfaulted control stays in tolerance; the ledger must survive a
# checkpoint round-trip bit-identically; the journal scanner's intact/torn/
# corrupt verdicts back the `nektarg events` exit code; and the audit and
# cluster expositions are pinned golden with HELP/TYPE lint.
go test -race -run 'TestAuditControlRunStaysInTolerance|TestAuditCatchesInjectedFluxFault|TestAuditLedgerResumeContinuity' -count=1 ./internal/core
go test -run 'TestScanJournalIntegrityVerdicts|TestGoldenClusterMetrics|TestClusterMetricsHelpTypeLint' -count=1 ./internal/fleet
go test -run 'TestGoldenAuditExposition|TestAuditExpositionHelpTypeLint' -count=1 ./internal/audit

# Hot-path kernel acceptance (PR 9). The parity suite pins the tuned/tiled
# SEM tensor-product kernels bit-identical to the retained scalar references
# and full solver/DPD trajectories bit-identical across worker counts, under
# the race detector with tiling enabled; the worker pool races its fork-join
# handoff. The zero-alloc guards then pin the steady-state step paths at
# exactly 0 allocs/op (run without -race: instrumentation allocates, so the
# guards skip themselves under the detector).
go test -race -run 'TestOperatorParityBitIdentical|TestStepBitIdenticalAcrossWorkerCounts' -count=1 ./internal/nektar3d
go test -race -run 'TestForcesBitIdenticalAcrossWorkerCounts|TestCaptureStateExcludesScratch' -count=1 ./internal/dpd
go test -race -run 'TestCGWithMatchesCG|TestCGBreakdownReportsDivergencePoint' -count=1 ./internal/linalg
go test -race -count=1 ./internal/work
go test -run 'TestSolverStepZeroAllocSteadyState|TestApplyStiffnessZeroAlloc' -count=1 ./internal/nektar3d
go test -run 'TestVVStepZeroAllocSteadyState' -count=1 ./internal/dpd
go test -run 'TestCGWithZeroAlloc' -count=1 ./internal/linalg
go test -run 'TestPoolRunZeroAlloc' -count=1 ./internal/work

# Performance-history acceptance (PR 10). A deterministic mid-run slowdown
# (the -slow-at injection hook) must fire exactly one typed step-time anomaly
# — with an auto-captured pprof profile, an anomaly flight dump on its own
# budget and a perf-anomaly journal event, all visible on /anomalies,
# /history and /cluster/history — while the unperturbed control run stays
# silent; series rings and baselines must survive a checkpoint round-trip
# bit-identically; and the sampling overhead stays under 1% of step time
# (the overhead and zero-alloc guards skip themselves under -race, so they
# run uninstrumented here).
go test -race -run 'TestHistoryControlRunNoAnomalies|TestHistoryInducedSlowdownEndToEnd|TestHistoryResumeContinuity' -count=1 ./internal/core
go test -run 'TestHistorySamplingOverhead' -count=1 ./internal/core
go test -run 'TestRingBoundsAndOrder|TestTierEnvelopeConservation|TestDetectorSustainedStepChangeFiresOnce|TestStateRoundTrip' -count=1 ./internal/history
go test -run 'TestAnomalyDumpBudgetIndependent|TestRuntimeGaugesInMetrics' -count=1 ./internal/monitor
go test -run 'TestClusterHistoryRollup' -count=1 ./internal/fleet
