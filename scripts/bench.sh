#!/bin/sh
# Benchmark bundle for the observability PR: communication-layer latency,
# telemetry overhead (enabled vs disabled instrumentation paths), and the
# paper's scaling tables in machine-readable form.
#
# Produces BENCH_telemetry.json in the repo root (override the path with
# OUT=..., used by make bench-compare): a single JSON document with the
# scaling tables (as emitted by `go run ./cmd/scaling -json`) plus raw
# `go test -bench` transcripts for the comm, telemetry, monitor, checkpoint,
# in-situ, transport, cluster observability, physics-audit, hot-path kernel
# and performance-history suites.
#
# Usage: scripts/bench.sh   (or: make bench-telemetry)
set -eu

cd "$(dirname "$0")/.."
out=${OUT:-BENCH_telemetry.json}

echo "== comm benchmarks (collectives + MCI exchange) =="
# -count=3: at 30 fixed iterations these numbers swing with scheduler noise;
# benchjson keeps the min of duplicate samples, so three counts give the gate
# a stable floor on both sides of the comparison.
comm=$(go test -run '^$' \
	-bench 'BenchmarkBcast|BenchmarkAllreduce|BenchmarkAllgather|BenchmarkBarrier|BenchmarkMCIExchange' \
	-benchtime=30x -count=3 . 2>&1)
printf '%s\n' "$comm"

echo "== telemetry overhead benchmarks (disabled vs enabled path) =="
tele=$(go test -run '^$' -bench 'Benchmark' -benchmem ./internal/telemetry 2>&1)
printf '%s\n' "$tele"

echo "== monitor benchmarks (imbalance analyzer, exposition, disabled probes) =="
mon=$(go test -run '^$' -bench 'Benchmark' -benchmem ./internal/monitor 2>&1)
printf '%s\n' "$mon"

echo "== checkpoint benchmarks (durable write + resume load, rank-sized bundle) =="
ckpt=$(go test -run '^$' -bench 'BenchmarkCheckpoint' -benchmem ./internal/checkpoint 2>&1)
printf '%s\n' "$ckpt"

echo "== in-situ benchmarks (publish/assemble + disabled hook) =="
insitu=$(go test -run '^$' -bench 'BenchmarkInsitu' -benchmem ./internal/insitu ./internal/core 2>&1)
printf '%s\n' "$insitu"

echo "== transport benchmarks (in-process vs TCP loopback, p2p + Bcast) =="
transport=$(go test -run '^$' -bench 'BenchmarkTransport' -benchmem ./internal/mpi/tcptransport 2>&1)
printf '%s\n' "$transport"

echo "== cluster benchmarks (journal append, aggregation, exposition, trace merge, disabled hooks) =="
cluster=$(go test -run '^$' -bench 'Benchmark' -benchmem ./internal/fleet 2>&1)
printf '%s\n' "$cluster"

echo "== audit benchmarks (disabled hook, per-exchange ledger update, exposition) =="
audit=$(go test -run '^$' -bench 'BenchmarkAudit' -benchmem ./internal/audit 2>&1)
printf '%s\n' "$audit"

echo "== kernel benchmarks (SEM tensor-product tuned vs reference, Helmholtz/CG, DPD forces; hot paths must report 0 allocs/op) =="
kernels=$(go test -run '^$' -bench 'BenchmarkKernel' -benchmem \
	./internal/nektar3d ./internal/linalg ./internal/dpd 2>&1)
printf '%s\n' "$kernels"

echo "== history benchmarks (per-exchange sampling cost, disabled hook; disabled path must report 0 allocs/op) =="
history=$(go test -run '^$' -bench 'BenchmarkSampleExchange|BenchmarkObserve|BenchmarkHistoryDisabled' -benchmem ./internal/history 2>&1)
printf '%s\n' "$history"

echo "== scaling tables (cmd/scaling -json) =="
tables=$(go run ./cmd/scaling -json)

# Assemble the bundle without extra tooling: the bench transcripts are
# embedded as JSON string arrays (one element per line) via go run so we
# need no jq/python in the container.
COMM="$comm" TELE="$tele" MONITOR="$mon" CKPT="$ckpt" INSITU="$insitu" TRANSPORT="$transport" CLUSTER="$cluster" AUDIT="$audit" KERNELS="$kernels" HISTORY="$history" TABLES="$tables" go run ./scripts/benchjson >"$out"

echo "wrote $out"
