// Benchjson assembles BENCH_telemetry.json for scripts/bench.sh: it reads
// the comm, telemetry, monitor and checkpoint benchmark transcripts plus the
// scaling tables from the COMM, TELE, MONITOR, CKPT and TABLES environment variables and
// emits one indented JSON document on stdout. Bench transcripts are parsed into structured
// {name, value, unit} samples (standard `go test -bench` line format) with
// the raw lines preserved alongside.
package main

import (
	"encoding/json"
	"log"
	"os"
	"strconv"
	"strings"
)

// Sample is one measurement from a `go test -bench` output line. A line
//
//	BenchmarkBcast/p=8-16   30   51042 ns/op   1234 B/op   7 allocs/op
//
// yields three samples: ns/op, B/op and allocs/op, all under the same name.
type Sample struct {
	Name  string  `json:"name"`
	Iters int64   `json:"iters"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

func parseBench(out string) (lines []string, samples []Sample) {
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		lines = append(lines, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		// Value/unit pairs follow: 51042 ns/op 1234 B/op 7 allocs/op ...
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			samples = append(samples, Sample{Name: f[0], Iters: iters, Value: v, Unit: f[i+1]})
		}
	}
	return lines, samples
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	commLines, commSamples := parseBench(os.Getenv("COMM"))
	teleLines, teleSamples := parseBench(os.Getenv("TELE"))
	monLines, monSamples := parseBench(os.Getenv("MONITOR"))
	ckptLines, ckptSamples := parseBench(os.Getenv("CKPT"))

	var tables json.RawMessage
	if raw := strings.TrimSpace(os.Getenv("TABLES")); raw != "" {
		if !json.Valid([]byte(raw)) {
			log.Fatal("TABLES is not valid JSON")
		}
		tables = json.RawMessage(raw)
	}

	doc := map[string]any{
		"comm": map[string]any{
			"lines":   commLines,
			"samples": commSamples,
		},
		"telemetry": map[string]any{
			"lines":   teleLines,
			"samples": teleSamples,
		},
		"monitor": map[string]any{
			"lines":   monLines,
			"samples": monSamples,
		},
		"checkpoint": map[string]any{
			"lines":   ckptLines,
			"samples": ckptSamples,
		},
		"scaling_tables": tables,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}
