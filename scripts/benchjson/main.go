// Benchjson assembles and compares BENCH_telemetry.json bundles.
//
// Bundle mode (default, used by scripts/bench.sh): reads the comm,
// telemetry, monitor, checkpoint, insitu, transport, cluster, audit,
// kernels and history benchmark transcripts plus the scaling tables from
// the COMM, TELE, MONITOR, CKPT, INSITU, TRANSPORT, CLUSTER, AUDIT,
// KERNELS, HISTORY and TABLES environment variables and emits one indented
// JSON document on stdout.
// Bench transcripts are parsed into structured {name, value, unit} samples
// (standard `go test -bench` line format) with the raw lines preserved
// alongside.
//
// Compare mode (make bench-compare):
//
//	go run ./scripts/benchjson -compare old.json new.json
//
// matches every ns/op sample present in both bundles by section/name and
// flags regressions where new exceeds old by more than -threshold (default
// 25%). Exits 1 when any regression is found, so CI can gate on it. Bench
// noise on shared runners is real: treat a failure as "rerun and look", not
// proof — but a clean pass is evidence no large regression shipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Sample is one measurement from a `go test -bench` output line. A line
//
//	BenchmarkBcast/p=8-16   30   51042 ns/op   1234 B/op   7 allocs/op
//
// yields three samples: ns/op, B/op and allocs/op, all under the same name.
type Sample struct {
	Name  string  `json:"name"`
	Iters int64   `json:"iters"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

func parseBench(out string) (lines []string, samples []Sample) {
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		lines = append(lines, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		// Value/unit pairs follow: 51042 ns/op 1234 B/op 7 allocs/op ...
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			samples = append(samples, Sample{Name: f[0], Iters: iters, Value: v, Unit: f[i+1]})
		}
	}
	return lines, samples
}

// sections is the stable order of bench transcript sections in a bundle.
var sections = []string{"comm", "telemetry", "monitor", "checkpoint", "insitu", "transport", "cluster", "audit", "kernels", "history"}

func bundle() {
	env := map[string]string{
		"comm":       "COMM",
		"telemetry":  "TELE",
		"monitor":    "MONITOR",
		"checkpoint": "CKPT",
		"insitu":     "INSITU",
		"transport":  "TRANSPORT",
		"cluster":    "CLUSTER",
		"audit":      "AUDIT",
		"kernels":    "KERNELS",
		"history":    "HISTORY",
	}
	doc := map[string]any{}
	for _, sec := range sections {
		lines, samples := parseBench(os.Getenv(env[sec]))
		doc[sec] = map[string]any{"lines": lines, "samples": samples}
	}

	var tables json.RawMessage
	if raw := strings.TrimSpace(os.Getenv("TABLES")); raw != "" {
		if !json.Valid([]byte(raw)) {
			log.Fatal("TABLES is not valid JSON")
		}
		tables = json.RawMessage(raw)
	}
	doc["scaling_tables"] = tables

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// loadNsPerOp reads a bundle and returns section/name -> ns/op. Duplicate
// names within a section keep the minimum (the usual min-of-N noise shield).
func loadNsPerOp(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, sec := range sections {
		secRaw, ok := doc[sec]
		if !ok {
			continue // older bundles predate some sections
		}
		var body struct {
			Samples []Sample `json:"samples"`
		}
		if err := json.Unmarshal(secRaw, &body); err != nil {
			return nil, fmt.Errorf("%s: section %q: %w", path, sec, err)
		}
		for _, s := range body.Samples {
			if s.Unit != "ns/op" {
				continue
			}
			key := sec + "/" + s.Name
			if v, ok := out[key]; !ok || s.Value < v {
				out[key] = s.Value
			}
		}
	}
	return out, nil
}

// compareResult summarizes one bundle-vs-bundle comparison.
type compareResult struct {
	compared    int
	missing     int // only in the old bundle
	newOnly     int // only in the new bundle
	unbaselined int // old value zero/negative: delta undefined
	regressions int
}

// compareNs writes the comparison table to w and tallies the verdicts; the
// caller decides the exit policy.
func compareNs(w io.Writer, oldNs, newNs map[string]float64, threshold float64) compareResult {
	keys := make([]string, 0, len(oldNs))
	for k := range oldNs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var res compareResult
	fmt.Fprintf(w, "%-64s %12s %12s %8s\n", "benchmark (section/name, ns/op)", "old", "new", "delta")
	for _, k := range keys {
		nv, ok := newNs[k]
		if !ok {
			res.missing++
			continue
		}
		res.compared++
		ov := oldNs[k]
		if ov <= 0 {
			// A zero-ns/op baseline (stubbed run, truncated transcript) made
			// the delta Inf/NaN and the row meaningless; flag it instead of
			// letting it slide through the gate.
			res.unbaselined++
			fmt.Fprintf(w, "%-64s %12.1f %12.1f %8s  << NO BASELINE\n", k, ov, nv, "n/a")
			continue
		}
		delta := nv/ov - 1
		mark := ""
		if delta > threshold {
			mark = "  << REGRESSION"
			res.regressions++
		}
		fmt.Fprintf(w, "%-64s %12.1f %12.1f %+7.1f%%%s\n", k, ov, nv, 100*delta, mark)
	}

	// Benchmarks only in the new bundle are expected when a PR adds a
	// section, but they must be visible: a silent no-op here once hid every
	// new benchmark from the report.
	var newOnly []string
	for k := range newNs {
		if _, ok := oldNs[k]; !ok {
			newOnly = append(newOnly, k)
		}
	}
	sort.Strings(newOnly)
	for _, k := range newOnly {
		fmt.Fprintf(w, "%-64s %12s %12.1f %8s  (new)\n", k, "-", newNs[k], "")
	}
	res.newOnly = len(newOnly)
	return res
}

func compare(oldPath, newPath string, threshold float64) {
	oldNs, err := loadNsPerOp(oldPath)
	if err != nil {
		log.Fatal(err)
	}
	newNs, err := loadNsPerOp(newPath)
	if err != nil {
		log.Fatal(err)
	}

	res := compareNs(os.Stdout, oldNs, newNs, threshold)
	fmt.Printf("\ncompared %d benchmarks (%d only in %s, %d new), threshold +%.0f%%\n",
		res.compared, res.missing, oldPath, res.newOnly, 100*threshold)
	if res.compared == 0 {
		log.Fatal("no common ns/op samples between the two bundles")
	}
	if res.unbaselined > 0 {
		log.Fatalf("%d benchmark(s) have a zero/negative ns/op baseline; regenerate the old bundle", res.unbaselined)
	}
	if res.regressions > 0 {
		log.Fatalf("%d regression(s) beyond +%.0f%% ns/op", res.regressions, 100*threshold)
	}
	fmt.Println("no regressions")
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")

	doCompare := flag.Bool("compare", false, "compare two bundles: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0.25, "regression threshold as a fraction (0.25 = +25% ns/op)")
	flag.Parse()

	if *doCompare {
		if flag.NArg() != 2 {
			log.Fatal("usage: benchjson -compare old.json new.json")
		}
		compare(flag.Arg(0), flag.Arg(1), *threshold)
		return
	}
	bundle()
}
