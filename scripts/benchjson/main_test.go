package main

import (
	"math"
	"strings"
	"testing"
)

func TestCompareNsRegressionDetection(t *testing.T) {
	old := map[string]float64{"comm/BenchmarkP2P-8": 100}
	new_ := map[string]float64{"comm/BenchmarkP2P-8": 130}
	var sb strings.Builder
	res := compareNs(&sb, old, new_, 0.25)
	if res.regressions != 1 || res.compared != 1 {
		t.Fatalf("got %+v, want 1 regression of 1 compared", res)
	}
	if !strings.Contains(sb.String(), "<< REGRESSION") {
		t.Fatalf("regression not marked:\n%s", sb.String())
	}

	sb.Reset()
	new_["comm/BenchmarkP2P-8"] = 120 // within +25%
	if res := compareNs(&sb, old, new_, 0.25); res.regressions != 0 {
		t.Fatalf("+20%% flagged as regression: %+v", res)
	}
}

func TestCompareNsZeroBaselineIsFlaggedNotInf(t *testing.T) {
	// The old code computed nv/ov - 1 unguarded: a 0 ns/op baseline turned
	// the delta into +Inf and the row into garbage. It must now be tallied
	// as unbaselined (a gate failure) and never reach the regression count.
	old := map[string]float64{
		"monitor/BenchmarkStub-8": 0,
		"comm/BenchmarkOK-8":      50,
	}
	new_ := map[string]float64{
		"monitor/BenchmarkStub-8": 42,
		"comm/BenchmarkOK-8":      55,
	}
	var sb strings.Builder
	res := compareNs(&sb, old, new_, 0.25)
	if res.unbaselined != 1 {
		t.Fatalf("zero baseline not counted: %+v", res)
	}
	if res.regressions != 0 {
		t.Fatalf("zero baseline leaked into regressions: %+v", res)
	}
	out := sb.String()
	if !strings.Contains(out, "NO BASELINE") {
		t.Fatalf("zero baseline not flagged:\n%s", out)
	}
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(out, bad) {
			t.Fatalf("output contains %s:\n%s", bad, out)
		}
	}
}

func TestCompareNsReportsNewOnlyBenchmarks(t *testing.T) {
	// New-only entries used to be silently dropped (the loop iterated old
	// keys only); a freshly added section never showed up in the report.
	old := map[string]float64{"comm/BenchmarkOK-8": 50}
	new_ := map[string]float64{
		"comm/BenchmarkOK-8":               51,
		"transport/BenchmarkTransportP2P":  1000,
		"transport/BenchmarkTransportMore": 2000,
	}
	var sb strings.Builder
	res := compareNs(&sb, old, new_, 0.25)
	if res.newOnly != 2 {
		t.Fatalf("new-only count %d, want 2", res.newOnly)
	}
	out := sb.String()
	for _, name := range []string{"transport/BenchmarkTransportP2P", "transport/BenchmarkTransportMore"} {
		if !strings.Contains(out, name) {
			t.Fatalf("new-only benchmark %s missing from report:\n%s", name, out)
		}
	}
}

func TestParseBenchSamples(t *testing.T) {
	lines, samples := parseBench("goos: linux\nBenchmarkX-8   30   51042 ns/op   1234 B/op   7 allocs/op\n")
	if len(lines) != 2 {
		t.Fatalf("lines %d", len(lines))
	}
	if len(samples) != 3 {
		t.Fatalf("samples %d, want 3", len(samples))
	}
	if samples[0].Unit != "ns/op" || math.Abs(samples[0].Value-51042) > 0 {
		t.Fatalf("first sample %+v", samples[0])
	}
}
