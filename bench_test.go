// Benchmark and regeneration harness: one benchmark per table and figure of
// the paper's evaluation, plus TestTable*/TestFigure* entry points that print
// the reproduced rows/series under `go test -run 'TestTable|TestFigure' -v`.
package nektarg_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"nektarg/internal/core"
	"nektarg/internal/dpd"
	"nektarg/internal/geometry"
	"nektarg/internal/mci"
	"nektarg/internal/mesh"
	"nektarg/internal/mpi"
	"nektarg/internal/nektar3d"
	"nektarg/internal/partition"
	"nektarg/internal/perfmodel"
	"nektarg/internal/platelet"
	"nektarg/internal/simd"
	"nektarg/internal/stats"
	"nektarg/internal/topology"
	"nektarg/internal/wpod"
	"time"
)

// ---------------------------------------------------------------------------
// Table 1: SIMD performance tuning speed-up factors.
// Paper: z=x*y 2.00x (XT5) / 3.40x (BG/P); Σxyz 2.53/1.60; Σxyy 4.00/2.25.
// We measure the tuned-vs-scalar ratio of the same three kernels in Go.
// ---------------------------------------------------------------------------

const table1N = 4096 // in-cache vectors, as the paper stresses

func table1Vectors() (x, y, z []float64) {
	rng := rand.New(rand.NewSource(42))
	x = make([]float64, table1N)
	y = make([]float64, table1N)
	z = make([]float64, table1N)
	for i := 0; i < table1N; i++ {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
	}
	return
}

func BenchmarkTable1_Mul_Scalar(b *testing.B) {
	x, y, z := table1Vectors()
	b.SetBytes(3 * 8 * table1N)
	for i := 0; i < b.N; i++ {
		simd.MulScalar(z, x, y)
	}
}

func BenchmarkTable1_Mul_Tuned(b *testing.B) {
	x, y, z := table1Vectors()
	b.SetBytes(3 * 8 * table1N)
	for i := 0; i < b.N; i++ {
		simd.MulTuned(z, x, y)
	}
}

var benchSink float64

func BenchmarkTable1_Dot3_Scalar(b *testing.B) {
	x, y, z := table1Vectors()
	b.SetBytes(3 * 8 * table1N)
	for i := 0; i < b.N; i++ {
		benchSink = simd.Dot3Scalar(x, y, z)
	}
}

func BenchmarkTable1_Dot3_Tuned(b *testing.B) {
	x, y, z := table1Vectors()
	b.SetBytes(3 * 8 * table1N)
	for i := 0; i < b.N; i++ {
		benchSink = simd.Dot3Tuned(x, y, z)
	}
}

func BenchmarkTable1_DotSq_Scalar(b *testing.B) {
	x, y, _ := table1Vectors()
	b.SetBytes(2 * 8 * table1N)
	for i := 0; i < b.N; i++ {
		benchSink = simd.DotSqScalar(x, y)
	}
}

func BenchmarkTable1_DotSq_Tuned(b *testing.B) {
	x, y, _ := table1Vectors()
	b.SetBytes(2 * 8 * table1N)
	for i := 0; i < b.N; i++ {
		benchSink = simd.DotSqTuned(x, y)
	}
}

// TestTable1 measures and prints the tuned/scalar speed-up factors next to
// the paper's SIMD factors.
func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	x, y, z := table1Vectors()
	// Best-of-several fixed-size timing loops: robust against concurrent
	// load from benchmarks running in the same invocation.
	const (
		iters = 2000
		reps  = 7
	)
	best := func(fn func()) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	ratio := func(scalar, tuned func()) float64 {
		return float64(best(scalar)) / float64(best(tuned))
	}
	r1 := ratio(func() { simd.MulScalar(z, x, y) }, func() { simd.MulTuned(z, x, y) })
	r2 := ratio(func() { benchSink = simd.Dot3Scalar(x, y, z) }, func() { benchSink = simd.Dot3Tuned(x, y, z) })
	r3 := ratio(func() { benchSink = simd.DotSqScalar(x, y) }, func() { benchSink = simd.DotSqTuned(x, y) })
	fmt.Println("Table 1: kernel tuning speed-up (this host; paper: Cray XT5 / BG per column)")
	fmt.Printf("  z[i]=x[i]*y[i]      %5.2fx   (paper 2.00 / 3.40)\n", r1)
	fmt.Printf("  a=Σ x[i]*y[i]*z[i]  %5.2fx   (paper 2.53 / 1.60)\n", r2)
	fmt.Printf("  a=Σ x[i]*y[i]*y[i]  %5.2fx   (paper 4.00 / 2.25)\n", r3)
	// Shape check: under `go test ./...` other packages run concurrently
	// and best-of-N timing still jitters, so the assertion only catches a
	// catastrophic pessimization; the benchmarks above give the clean
	// numbers. The paper's own factors differ 2x between its two machines,
	// so only the sign of the effect is portable.
	if r2 < 0.6 || r3 < 0.6 {
		t.Errorf("tuned reduction kernels regressed badly: %v, %v", r2, r3)
	}
}

// ---------------------------------------------------------------------------
// Table 2: partitioning strategies.
// ---------------------------------------------------------------------------

func BenchmarkTable2_FaceOnlyPartition(b *testing.B) {
	m := mesh.CarotidTets(16, 4, 4)
	g := m.AdjacencyGraph(mesh.FaceOnly, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := partition.Partition(g, 16)
		benchSink = partition.Evaluate(g, parts, 16).EdgeCut
	}
}

func BenchmarkTable2_FullAdjacencyPartition(b *testing.B) {
	m := mesh.CarotidTets(16, 4, 4)
	g := m.AdjacencyGraph(mesh.FullAdjacency, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := partition.Partition(g, 16)
		benchSink = partition.Evaluate(g, parts, 16).EdgeCut
	}
}

func TestTable2(t *testing.T) {
	fmt.Println(perfmodel.Table2())
}

// ---------------------------------------------------------------------------
// Tables 3-5 and §4.1: machine-model replays.
// ---------------------------------------------------------------------------

func BenchmarkTable3_WeakScalingReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = perfmodel.Table3().Rows[0].Measured
	}
}

func BenchmarkTable4_StrongScalingReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = perfmodel.Table4().Rows[0].Measured
	}
}

func BenchmarkTable5_CoupledScalingReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = perfmodel.Table5().Rows[0].Measured
	}
}

func TestTable3(t *testing.T) { fmt.Println(perfmodel.Table3()) }
func TestTable4(t *testing.T) { fmt.Println(perfmodel.Table4()) }
func TestTable5(t *testing.T) { fmt.Println(perfmodel.Table5()) }
func TestExtendedRuns(t *testing.T) {
	fmt.Println(perfmodel.ExtendedWeakScaling())
}

// ---------------------------------------------------------------------------
// Figure 7: WPOD ensemble average + Gaussian fluctuation PDF from a DPD
// channel flow.
// ---------------------------------------------------------------------------

// fig7Snapshots runs a small DPD channel and samples velocity snapshots.
func fig7Snapshots(nSnap, nts int) [][]float64 {
	p := dpd.DefaultParams(1)
	p.Dt = 0.005
	sys := dpd.NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 4}, [3]bool{true, true, false})
	sys.Walls = []dpd.Wall{
		&dpd.PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&dpd.PlaneWall{Point: geometry.Vec3{Z: 4}, Norm: geometry.Vec3{Z: -1}},
	}
	sys.External = func(tm float64, _ *dpd.Particle) geometry.Vec3 {
		return geometry.Vec3{X: 0.08 * (1 + math.Sin(2*math.Pi*tm/4))}
	}
	sys.FillRandom(432, 0)
	sys.Run(400)
	bins := dpd.NewBinGrid(geometry.Vec3{}, geometry.Vec3{X: 6, Y: 6, Z: 4}, 1, 1, 8)
	snaps := make([][]float64, 0, nSnap)
	for k := 0; k < nSnap; k++ {
		for s := 0; s < nts; s++ {
			sys.VVStep()
			bins.Accumulate(sys)
		}
		snaps = append(snaps, dpd.Component(bins.Snapshot(), 0))
	}
	return snaps
}

func BenchmarkFig7_WPOD(b *testing.B) {
	snaps := fig7Snapshots(30, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := wpod.Analyze(snaps, wpod.Options{})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r.Eigenvalues[0]
	}
}

func TestFigure7(t *testing.T) {
	snaps := fig7Snapshots(40, 30)
	r, err := wpod.Analyze(snaps, wpod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flucts := r.Fluctuations()
	var mom stats.Moments
	for _, row := range flucts {
		mom.AddAll(row)
	}
	sigma := mom.StdDev()
	h := stats.NewHistogram(-4*sigma, 4*sigma, 30)
	for _, row := range flucts {
		h.AddAll(row)
	}
	good := h.L2PDFDistance(0, sigma)
	bad := h.L2PDFDistance(0, 3*sigma)
	fmt.Printf("Figure 7: WPOD of DPD channel flow\n")
	fmt.Printf("  cutoff %d modes of %d; fluctuation sigma = %.4f\n", r.Cutoff, len(r.Eigenvalues), sigma)
	fmt.Printf("  PDF-vs-Gaussian L2 distance: matched sigma %.4f, 3x-wrong sigma %.4f\n", good, bad)
	if good >= bad {
		t.Errorf("fluctuation PDF does not fit a Gaussian better than a mismatched one")
	}
	if r.Cutoff >= len(r.Eigenvalues)/2 {
		t.Errorf("no spectral separation: cutoff %d of %d", r.Cutoff, len(r.Eigenvalues))
	}
}

// ---------------------------------------------------------------------------
// Figure 8: POD eigenspectrum of a time-periodically forced DPD pipe flow.
// ---------------------------------------------------------------------------

func fig8Snapshots(nSnap, nts int) ([][]float64, [][]float64) {
	p := dpd.DefaultParams(1)
	p.Dt = 0.005
	r := 3.0
	sys := dpd.NewSystem(p,
		geometry.Vec3{X: -r - 0.5, Y: -r - 0.5, Z: 0},
		geometry.Vec3{X: r + 0.5, Y: r + 0.5, Z: 4},
		[3]bool{false, false, true})
	sys.Walls = []dpd.Wall{&dpd.CylinderWall{Center: geometry.Vec3{}, Radius: r}}
	rng := rand.New(rand.NewSource(3))
	for len(sys.Particles) < 340 {
		pos := geometry.Vec3{X: (rng.Float64() - 0.5) * 2 * r, Y: (rng.Float64() - 0.5) * 2 * r, Z: rng.Float64() * 4}
		if math.Hypot(pos.X, pos.Y) < r-0.2 {
			sys.AddParticle(pos, geometry.Vec3{}, 0, false)
		}
	}
	sys.External = func(tm float64, _ *dpd.Particle) geometry.Vec3 {
		return geometry.Vec3{Z: 0.3 * (1 + 0.8*math.Sin(2*math.Pi*tm/3))}
	}
	sys.Run(400)
	bins := dpd.NewBinGrid(geometry.Vec3{X: -r, Y: -0.75, Z: 0}, geometry.Vec3{X: r, Y: 0.75, Z: 4}, 6, 1, 2)
	var sz, sx [][]float64
	for k := 0; k < nSnap; k++ {
		for s := 0; s < nts; s++ {
			sys.VVStep()
			bins.Accumulate(sys)
		}
		snap := bins.Snapshot()
		sz = append(sz, dpd.Component(snap, 2))
		sx = append(sx, dpd.Component(snap, 0))
	}
	return sz, sx
}

func BenchmarkFig8_Eigenspectrum(b *testing.B) {
	sz, _ := fig8Snapshots(24, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := wpod.Analyze(sz, wpod.Options{})
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r.Eigenvalues[0]
	}
}

func TestFigure8(t *testing.T) {
	sz, sx := fig8Snapshots(36, 25)
	rz, err := wpod.Analyze(sz, wpod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := wpod.Analyze(sx, wpod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("Figure 8: POD eigenspectra, pulsatile DPD pipe flow")
	fmt.Printf("%4s %14s %14s\n", "k", "lambda_z", "lambda_x")
	for k := 0; k < 8; k++ {
		fmt.Printf("%4d %14.5e %14.5e\n", k+1, rz.Eigenvalues[k], rx.Eigenvalues[k])
	}
	// Paper shape: streamwise low modes tower over the flat tail; the
	// transverse component is noise-dominated with far less energy in the
	// leading mode.
	if rz.Eigenvalues[0] < 5*rz.Eigenvalues[4] {
		t.Errorf("streamwise spectrum not separated: %v", rz.Eigenvalues[:6])
	}
	if rz.Eigenvalues[0] < 2*rx.Eigenvalues[0] {
		t.Errorf("streamwise mode should dominate transverse: %v vs %v",
			rz.Eigenvalues[0], rx.Eigenvalues[0])
	}
}

// ---------------------------------------------------------------------------
// Figure 9: interface continuity of the coupled simulation.
// ---------------------------------------------------------------------------

// fig9Setup builds a two-patch + DPD coupled system.
func fig9Setup() (*core.Metasolver, *core.ContinuumPatch, *core.ContinuumPatch, *core.AtomisticRegion) {
	mk := func() *nektar3d.Solver {
		g := nektar3d.NewGrid(3, 1, 2, 4, 1.5, 1, 1, false, true, false)
		s := nektar3d.NewSolver(g, 0.5, 0.01)
		s.Force = func(_, _, _, _ float64) (float64, float64, float64) { return 1, 0, 0 }
		return s
	}
	sa, sb := mk(), mk()
	prof := func(x, y, z float64) (float64, float64, float64) { return z * (1 - z), 0, 0 }
	sa.SetInitial(prof)
	sb.SetInitial(prof)
	bc := func(_, x, y, z float64) (float64, float64, float64) { return prof(x, y, z) }
	sa.VelBC = bc
	sb.VelBC = bc
	pa := core.NewContinuumPatch("A", sa, geometry.Vec3{})
	pb := core.NewContinuumPatch("B", sb, geometry.Vec3{X: 1})

	p := dpd.DefaultParams(1)
	p.Dt = 0.005
	sys := dpd.NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 10, Y: 10, Z: 10}, [3]bool{false, true, true})
	sys.FillRandom(2000, 0)
	inflow := &dpd.FluxBC{Axis: 0, AtMax: false, Rho: 3}
	outflow := &dpd.FluxBC{Axis: 0, AtMax: true, Rho: 3}
	sys.Inflows = []*dpd.FluxBC{inflow, outflow}
	region := &core.AtomisticRegion{
		Name: "insert", Sys: sys,
		Origin:        geometry.Vec3{X: 1.6, Y: 0.4, Z: 0.4},
		NSUnits:       core.Units{L: 1e-3, Nu: 0.5},
		DPDUnits:      core.Units{L: 2e-5, Nu: 0.2},
		VelocityBoost: 250,
		Interfaces: []*geometry.Surface{geometry.PlanarRect("g", geometry.Vec3{},
			geometry.Vec3{Y: 10}, geometry.Vec3{Z: 10}, 3, 3)},
		FluxFaces: []*dpd.FluxBC{inflow},
	}
	// Pre-develop the DPD mean flow.
	for i := range sys.Particles {
		sys.Particles[i].Vel.X += 0.25 * core.VelocityScale(region.NSUnits, region.DPDUnits) * region.VelocityBoost
	}
	m := core.NewMetasolver()
	m.Patches = []*core.ContinuumPatch{pa, pb}
	m.Couplings = []*core.PatchCoupling{
		{Donor: pa, Receiver: pb, Face: "x0"},
		{Donor: pb, Receiver: pa, Face: "x1"},
	}
	m.Atomistic = []*core.AtomisticRegion{region}
	return m, pa, pb, region
}

func BenchmarkFig9_InterfaceContinuity(b *testing.B) {
	m, _, _, region := fig9Setup()
	if err := m.Advance(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rms, _ := m.InterfaceContinuity(region, 2.5)
		benchSink = rms
	}
}

func TestFigure9(t *testing.T) {
	m, pa, pb, region := fig9Setup()
	if err := m.Advance(4); err != nil {
		t.Fatal(err)
	}
	// Continuum-continuum continuity on the overlap.
	var rms float64
	var n int
	for _, x := range []float64{1.1, 1.25, 1.4} {
		for _, z := range []float64{0.25, 0.5, 0.75} {
			g := geometry.Vec3{X: x, Y: 0.5, Z: z}
			ua, va, wa := pa.SampleVelocity(g)
			ub, vb, wb := pb.SampleVelocity(g)
			d := geometry.Vec3{X: ua - ub, Y: va - vb, Z: wa - wb}
			rms += d.Norm2()
			n++
		}
	}
	cc := math.Sqrt(rms / float64(n))
	ca, cn := m.InterfaceContinuity(region, 2.5)
	fmt.Printf("Figure 9: interface continuity after %d exchanges\n", m.Exchanges)
	fmt.Printf("  continuum-continuum overlap RMS: %.3e (velocity scale 0.25)\n", cc)
	fmt.Printf("  continuum-atomistic RMS: %.3e over %d probes (DPD velocity scale %.2f)\n",
		ca, cn, 0.25*core.VelocityScale(region.NSUnits, region.DPDUnits)*region.VelocityBoost)
	if cc > 0.01 {
		t.Errorf("continuum-continuum mismatch %v too large", cc)
	}
	scale := 0.25 * core.VelocityScale(region.NSUnits, region.DPDUnits) * region.VelocityBoost
	if ca > scale {
		t.Errorf("continuum-atomistic mismatch %v exceeds the velocity scale %v", ca, scale)
	}
}

// ---------------------------------------------------------------------------
// Figure 10: platelet aggregation / clot growth.
// ---------------------------------------------------------------------------

func fig10Run(steps int) []int {
	p := dpd.DefaultParams(2)
	p.Dt = 0.005
	p.KBT = 0.2
	sys := dpd.NewSystem(p, geometry.Vec3{}, geometry.Vec3{X: 8, Y: 8, Z: 4}, [3]bool{true, true, false})
	sys.Walls = []dpd.Wall{
		&dpd.PlaneWall{Point: geometry.Vec3{}, Norm: geometry.Vec3{Z: 1}},
		&dpd.PlaneWall{Point: geometry.Vec3{Z: 4}, Norm: geometry.Vec3{Z: -1}},
	}
	sys.FillRandom(500, 0)
	var sites []geometry.Vec3
	for x := 3.0; x <= 5; x++ {
		sites = append(sites, geometry.Vec3{X: x, Y: 4, Z: 0.3})
	}
	clot := platelet.NewModel(1, sites, 0.1)
	sys.Bonded = append(sys.Bonded, clot)
	rng := rand.New(rand.NewSource(9))
	platelet.SeedPlatelets(sys, clot, 50,
		geometry.Vec3{X: 0.5, Y: 0.5, Z: 0.3}, geometry.Vec3{X: 7.5, Y: 7.5, Z: 2.5}, rng.Float64)
	var curve []int
	for i := 0; i < steps/50; i++ {
		sys.Run(50)
		curve = append(curve, clot.ClotSize(sys))
	}
	return curve
}

func BenchmarkFig10_ClotGrowth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := fig10Run(200)
		benchSink = float64(c[len(c)-1])
	}
}

func TestFigure10(t *testing.T) {
	curve := fig10Run(800)
	fmt.Printf("Figure 10: clot growth (adhered platelets per 50 DPD steps)\n  %v\n", curve)
	if curve[len(curve)-1] < 5 {
		t.Errorf("clot did not grow: %v", curve)
	}
	if curve[len(curve)-1] <= curve[0] {
		t.Errorf("no growth over the run: %v", curve)
	}
}

// ---------------------------------------------------------------------------
// §3.5: topology-aware communication scheduling.
// ---------------------------------------------------------------------------

func topoTraffic() (*topology.Torus, []topology.Message) {
	tor := topology.NewBGPTorus(512)
	rng := rand.New(rand.NewSource(1))
	var msgs []topology.Message
	for i := 0; i < 400; i++ {
		msgs = append(msgs, topology.Message{
			Src:   rng.Intn(tor.Cores()),
			Dst:   rng.Intn(tor.Cores()),
			Bytes: 64e3,
		})
	}
	return tor, msgs
}

func BenchmarkTopologyAwareComm_Scheduled(b *testing.B) {
	tor, msgs := topoTraffic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = topology.RoundCost(tor, topology.ScheduleMessages(tor, msgs), topology.Deterministic)
	}
}

func BenchmarkTopologyAwareComm_FCFS(b *testing.B) {
	tor, msgs := topoTraffic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = topology.RoundCost(tor, topology.FirstComeFirstServedRounds(tor, msgs), topology.Deterministic)
	}
}

func TestTopologyAwareGain(t *testing.T) {
	tor, msgs := topoTraffic()
	sched := topology.RoundCost(tor, topology.ScheduleMessages(tor, msgs), topology.Deterministic)
	naive := topology.RoundCost(tor, topology.FirstComeFirstServedRounds(tor, msgs), topology.Deterministic)
	gain := 100 * (naive - sched) / naive
	fmt.Printf("§3.5 topology-aware scheduling: scheduled %.3g s vs FCFS %.3g s (%.1f%% faster; paper reports 3-5%% end-to-end)\n",
		sched, naive, gain)
	if sched > naive {
		t.Errorf("scheduling made communication slower: %v vs %v", sched, naive)
	}
}

// ---------------------------------------------------------------------------
// MCI exchange throughput: the three-step gather/root-swap/scatter protocol.
// ---------------------------------------------------------------------------

func BenchmarkMCIThreeStepExchange(b *testing.B) {
	cfg := mci.Config{Tasks: []mci.TaskSpec{{Name: "a", Ranks: 4}, {Name: "b", Ranks: 4}}}
	payload := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, func(w *mpi.Comm) {
			h, err := mci.Build(w, cfg)
			if err != nil {
				panic(err)
			}
			g, err := mci.NewInterfaceGroup(h, "io", true)
			if err != nil {
				panic(err)
			}
			peer := map[int]int{0: 4, 1: 0}[h.Task]
			counts := []int{1024, 1024, 1024, 1024}
			for round := 0; round < 10; round++ {
				g.Exchange(h.World, peer, g.Salt(), payload, counts)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
