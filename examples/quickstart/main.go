// Quickstart: the smallest coupled continuum-atomistic simulation.
//
// A spectral-element channel flow (NεκTαr-3D) drives an embedded DPD box
// through the NεκTαrG metasolver: every exchange period the continuum
// velocity is sampled at the DPD inflow interface, scaled per Eq. 1 (plus
// the paper's interface velocity scale-up, which lifts the mean flow clear
// of the DPD thermal noise), and imposed as the DPD inflow. The staggered
// time progression advances 10 continuum steps and 200 DPD steps per
// exchange period.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"nektarg/internal/core"
	"nektarg/internal/dpd"
	"nektarg/internal/geometry"
	"nektarg/internal/nektar3d"
)

func main() {
	// Continuum channel: walls at z=0,1, periodic x/y, body-force driven;
	// seeded with the analytic Poiseuille profile.
	grid := nektar3d.NewGrid(2, 1, 2, 4, 2, 1, 1, true, true, false)
	ns := nektar3d.NewSolver(grid, 0.5, 0.01)
	ns.Force = func(_, _, _, _ float64) (float64, float64, float64) { return 1, 0, 0 }
	ns.SetInitial(func(x, y, z float64) (float64, float64, float64) {
		return z * (1 - z), 0, 0
	})
	patch := core.NewContinuumPatch("channel", ns, geometry.Vec3{})

	// DPD box: 10x10x10 DPD units embedded mid-channel; one DPD unit is
	// 1/50 continuum unit, so the box spans 0.2 continuum units.
	params := dpd.DefaultParams(1)
	params.Dt = 0.005
	sys := dpd.NewSystem(params, geometry.Vec3{}, geometry.Vec3{X: 10, Y: 10, Z: 10}, [3]bool{false, true, true})
	sys.FillRandom(3000, 0)
	inflow := &dpd.FluxBC{Axis: 0, AtMax: false, Rho: 3}
	outflow := &dpd.FluxBC{Axis: 0, AtMax: true, Rho: 3}
	sys.Inflows = []*dpd.FluxBC{inflow, outflow}

	nsUnits := core.Units{L: 1e-3, Nu: 0.5}  // 1 continuum unit = 1 mm
	dpdUnits := core.Units{L: 2e-5, Nu: 0.2} // 1 DPD unit = 20 µm

	gammaIn := geometry.PlanarRect("gammaIn", geometry.Vec3{},
		geometry.Vec3{Y: 10}, geometry.Vec3{Z: 10}, 3, 3)
	region := &core.AtomisticRegion{
		Name:          "insert",
		Sys:           sys,
		Origin:        geometry.Vec3{X: 0.9, Y: 0.4, Z: 0.4},
		NSUnits:       nsUnits,
		DPDUnits:      dpdUnits,
		VelocityBoost: 250, // the paper's interface velocity scale-up
		Interfaces:    []*geometry.Surface{gammaIn},
		FluxFaces:     []*dpd.FluxBC{inflow},
	}

	// Pre-develop the DPD flow at the expected mean so the demo does not
	// need thousands of steps of spin-up.
	expected := 0.25 * core.VelocityScale(nsUnits, dpdUnits) * region.VelocityBoost
	for i := range sys.Particles {
		sys.Particles[i].Vel.X += expected
	}

	meta := core.NewMetasolver()
	meta.Patches = []*core.ContinuumPatch{patch}
	meta.Atomistic = []*core.AtomisticRegion{region}

	fmt.Println("quickstart: coupled channel + DPD insert")
	fmt.Printf("continuum: %d nodes, nu=%v; DPD: %d particles\n",
		grid.NumNodes(), ns.Nu, len(sys.Particles))
	fmt.Printf("velocity scale (Eq. 1): %.4g, interface scale-up: %.0fx\n",
		core.VelocityScale(nsUnits, dpdUnits), region.VelocityBoost)

	for e := 0; e < 12; e++ {
		if err := meta.Advance(1); err != nil {
			log.Fatal(err)
		}
		rms, n := meta.InterfaceContinuity(region, 2.5)
		fmt.Printf("exchange %d: t_NS=%.3f, interface continuity RMS=%.4f over %d probes\n",
			e+1, ns.Time, rms, n)
	}

	// Compare the DPD bulk velocity against the scaled continuum target.
	u, _, _ := patch.SampleVelocity(region.DPDToGlobal(geometry.Vec3{X: 5, Y: 5, Z: 5}))
	target := u * core.VelocityScale(nsUnits, dpdUnits) * region.VelocityBoost
	got, n := sys.SampleVelocityAt(geometry.Vec3{X: 5, Y: 5, Z: 5}, 3)
	fmt.Printf("\nDPD center velocity %.4f (n=%d), scaled continuum target %.4f, rel err %.1f%%\n",
		got.X, n, target, 100*math.Abs(got.X-target)/math.Max(1e-12, math.Abs(target)))
}
