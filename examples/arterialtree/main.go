// Arterialtree: the NεκTαr-1D solver on a small cerebral-style arterial
// network — the component that "can be used to account for flow dynamics in
// peripheral arterial networks invisible to the MRI or CT scanners".
//
// A parent artery bifurcates into two daughters, each bifurcating again into
// two terminal branches closed by RC windkessel outlets. A pulsatile
// (heart-like) inflow drives the network; the program prints per-branch
// pressure and flow waveform summaries, the flow split, and checks global
// mass balance over a cycle.
//
// Run: go run ./examples/arterialtree [-cycles N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"nektarg/internal/nektar1d"
)

func main() {
	cycles := flag.Int("cycles", 3, "number of cardiac cycles to simulate")
	flag.Parse()

	const (
		rho  = 1.06 // g/cm^3
		beta = 4e4
		kr   = 8.0
		hr   = 1.0 // cardiac period, s
	)

	net := &nektar1d.Network{}
	parent := net.AddSegment(nektar1d.NewSegment("parent", 12, 121, 0.8, beta, rho, kr))
	l1 := net.AddSegment(nektar1d.NewSegment("left", 10, 101, 0.45, beta, rho, kr))
	r1 := net.AddSegment(nektar1d.NewSegment("right", 10, 101, 0.45, beta, rho, kr))
	ll := net.AddSegment(nektar1d.NewSegment("left-left", 8, 81, 0.25, beta, rho, kr))
	lr := net.AddSegment(nektar1d.NewSegment("left-right", 8, 81, 0.25, beta, rho, kr))
	rl := net.AddSegment(nektar1d.NewSegment("right-left", 8, 81, 0.25, beta, rho, kr))
	rr := net.AddSegment(nektar1d.NewSegment("right-right", 8, 81, 0.25, beta, rho, kr))

	// Pulsatile inflow: systolic burst + diastolic rest.
	inQ := func(t float64) float64 {
		phase := math.Mod(t, hr)
		if phase < 0.3 {
			return 8 * math.Sin(math.Pi*phase/0.3)
		}
		return 0
	}
	net.Inlets = append(net.Inlets, &nektar1d.Inlet{Seg: parent, Q: inQ})
	net.Junctions = append(net.Junctions,
		&nektar1d.Junction{Parent: parent, Children: []*nektar1d.Segment{l1, r1}},
		&nektar1d.Junction{Parent: l1, Children: []*nektar1d.Segment{ll, lr}},
		&nektar1d.Junction{Parent: r1, Children: []*nektar1d.Segment{rl, rr}},
	)
	terminals := []*nektar1d.Segment{ll, lr, rl, rr}
	for _, s := range terminals {
		net.Outlets = append(net.Outlets, &nektar1d.Outlet{Seg: s, WK: nektar1d.NewWindkessel(400, 2.5e-4)})
	}

	c0 := parent.WaveSpeed(parent.A0)
	dt := 0.3 * parent.Dx() / (c0 * 2) // CFL headroom for systolic peaks
	fmt.Printf("arterial tree: 7 segments, rest wave speed %.0f cm/s, dt = %.2e s\n", c0, dt)
	fmt.Printf("outlet windkessels: R=400, C=2.5e-4 (tau = %.2f s)\n\n", 400*2.5e-4)

	type track struct {
		pMin, pMax float64
		qTot       float64
	}
	stats := map[string]*track{}
	for _, s := range net.Segments {
		stats[s.Name] = &track{pMin: math.Inf(1), pMax: math.Inf(-1)}
	}
	var inVol, outVol float64

	steps := int(float64(*cycles) * hr / dt)
	lastCycleStart := float64(*cycles-1) * hr
	for i := 0; i < steps; i++ {
		if err := net.Step(dt); err != nil {
			log.Fatal(err)
		}
		inVol += dt * parent.Flow(0)
		outVol += dt * net.TotalOutletFlow()
		if net.Time >= lastCycleStart { // record the settled last cycle
			for _, s := range net.Segments {
				tr := stats[s.Name]
				mid := s.N / 2
				p := s.Pressure(mid)
				if p < tr.pMin {
					tr.pMin = p
				}
				if p > tr.pMax {
					tr.pMax = p
				}
				tr.qTot += dt * s.Flow(mid)
			}
		}
	}

	fmt.Printf("%-12s %12s %12s %12s\n", "segment", "P_dia", "P_sys", "mean Q (last cycle)")
	for _, s := range net.Segments {
		tr := stats[s.Name]
		fmt.Printf("%-12s %12.1f %12.1f %12.3f\n", s.Name, tr.pMin, tr.pMax, tr.qTot/hr)
	}

	// Flow split and mass balance diagnostics.
	qL := stats["left"].qTot
	qR := stats["right"].qTot
	fmt.Printf("\nleft/right flow split: %.1f%% / %.1f%%\n",
		100*qL/(qL+qR), 100*qR/(qL+qR))
	fmt.Printf("volume in over %d cycles: %.3f cm^3; out through windkessels: %.3f cm^3\n",
		*cycles, inVol, outVol)
	stroke := 8 * 0.3 * 2 / math.Pi // per-cycle inflow volume
	fmt.Printf("stroke volume (analytic): %.3f cm^3/cycle\n", stroke)
}
