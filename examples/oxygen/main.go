// Oxygen: advection-diffusion of oxygen in a perfused channel — the
// transport problem the paper's introduction motivates ("surprisingly less
// effort has been put into studying blood flow patterns and oxygen transport
// within the brain").
//
// A Poiseuille channel carries oxygen-saturated blood past a consuming
// tissue layer at the lower wall (a volumetric sink mimicking capillary-bed
// uptake). The run reports the developing concentration profile, the uptake
// rate, and the wall oxygen flux — alongside the wall shear stress the same
// flow exerts (§3.4's hemodynamic quantity of interest).
//
// Run: go run ./examples/oxygen [-steps N]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"nektarg/internal/geometry"
	"nektarg/internal/nektar3d"
)

func main() {
	steps := flag.Int("steps", 300, "transport steps")
	flag.Parse()

	const (
		nu = 0.5
		d  = 0.02 // oxygen diffusivity
	)
	// Channel: periodic x/y, walls at z = 0, 1; Poiseuille in x.
	g := nektar3d.NewGrid(2, 1, 3, 5, 2, 1, 1, true, true, false)
	s := nektar3d.NewSolver(g, nu, 0.01)
	s.Force = func(_, _, _, _ float64) (float64, float64, float64) { return 1, 0, 0 }
	s.SetInitial(func(x, y, z float64) (float64, float64, float64) {
		return z * (1 - z), 0, 0
	})

	tr := nektar3d.NewTransport(s, d)
	// Saturated blood enters everywhere; the tissue layer near z=0
	// consumes oxygen proportionally to the local concentration.
	tr.SetInitial(func(x, y, z float64) float64 { return 1 })
	uptake := func(z float64) float64 {
		if z < 0.2 {
			return 2.0 // consumption rate coefficient
		}
		return 0
	}
	tr.Source = func(_, x, y, z float64) float64 {
		c := g.Sample(tr.C, geometry.Vec3{X: x, Y: y, Z: z})
		return -uptake(z) * c
	}

	fmt.Printf("oxygen transport: channel %dx%dx%d P=%d, nu=%v, D=%v (Pe ~ %.0f)\n",
		g.Nex, g.Ney, g.Nez, g.P, nu, d, 0.25*1/d)
	fmt.Println("\nstep   total O2    uptake/step   c(z=0.1)  c(z=0.5)  c(z=0.9)")
	prev := tr.Total()
	for i := 1; i <= *steps; i++ {
		if err := s.Step(); err != nil {
			log.Fatal(err)
		}
		if err := tr.Step(); err != nil {
			log.Fatal(err)
		}
		if i%(*steps/10) == 0 {
			tot := tr.Total()
			fmt.Printf("%4d %10.4f %12.3e %9.4f %9.4f %9.4f\n",
				i, tot, prev-tot,
				g.Sample(tr.C, geometry.Vec3{X: 1, Y: 0.5, Z: 0.1}),
				g.Sample(tr.C, geometry.Vec3{X: 1, Y: 0.5, Z: 0.5}),
				g.Sample(tr.C, geometry.Vec3{X: 1, Y: 0.5, Z: 0.9}))
			prev = tot
		}
	}

	// Hemodynamic diagnostics at the consuming wall.
	wss := s.MeanWallShearStress("z0", 0)
	fmt.Printf("\nmean wall shear stress at the tissue wall: %.4f (analytic Poiseuille: %.4f)\n",
		wss, 0.5)
	// Oxygen depletion boundary layer: concentration at the wall vs core.
	cWall := g.Sample(tr.C, geometry.Vec3{X: 1, Y: 0.5, Z: 0.02})
	cCore := g.Sample(tr.C, geometry.Vec3{X: 1, Y: 0.5, Z: 0.6})
	fmt.Printf("oxygen depletion layer: c(wall) = %.4f vs c(core) = %.4f (ratio %.2f)\n",
		cWall, cCore, cWall/math.Max(cCore, 1e-12))
}
