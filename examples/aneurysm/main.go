// Aneurysm: the paper's headline coupled simulation at laptop scale.
//
// A two-patch continuum domain (a feeding artery coupled to a sac-carrying
// patch, standing in for the circle-of-Willis decomposition of Figure 1)
// drives an embedded DPD region at the aneurysm fundus where the flow
// stagnates. Platelets seeded in the DPD region activate after Pivkin's
// activation delay near the damaged-wall adhesion sites and aggregate into a
// growing clot (Figure 10). With -check-interfaces the run reports the
// velocity continuity across both kinds of interfaces (Figure 9).
//
// Run: go run ./examples/aneurysm [-exchanges N] [-check-interfaces]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"nektarg/internal/core"
	"nektarg/internal/dpd"
	"nektarg/internal/geometry"
	"nektarg/internal/nektar3d"
	"nektarg/internal/platelet"
)

func main() {
	exchanges := flag.Int("exchanges", 8, "number of coupling exchange periods")
	checkIfaces := flag.Bool("check-interfaces", false, "report Figure 9 interface continuity")
	flag.Parse()

	// Patch A: feeding artery, x in [0, 1.5]; patch B: sac region,
	// x in [1, 2.5] (overlap [1, 1.5]); walls at z=0,1, pulsatile forcing.
	mk := func() *nektar3d.Solver {
		g := nektar3d.NewGrid(3, 1, 2, 4, 1.5, 1, 1, false, true, false)
		s := nektar3d.NewSolver(g, 0.5, 0.01)
		return s
	}
	sa, sb := mk(), mk()
	prof := func(x, y, z float64) (float64, float64, float64) { return z * (1 - z), 0, 0 }
	sa.SetInitial(prof)
	sb.SetInitial(prof)
	// Pulsatile inflow on A (Womersley-like modulation); walls no-slip,
	// open faces hold the Poiseuille trace until coupling overrides them.
	sa.Force = func(tm, _, _, _ float64) (float64, float64, float64) { return 1, 0, 0 }
	sb.Force = sa.Force
	bc := func(_, x, y, z float64) (float64, float64, float64) { return prof(x, y, z) }
	sa.VelBC = bc
	sb.VelBC = bc

	pa := core.NewContinuumPatch("artery", sa, geometry.Vec3{})
	pb := core.NewContinuumPatch("sacPatch", sb, geometry.Vec3{X: 1})

	// DPD region at the fundus, fed from the low-velocity near-wall zone.
	params := dpd.DefaultParams(2) // species 0: plasma, 1: platelets
	params.Dt = 0.005
	params.KBT = 0.2
	sys := dpd.NewSystem(params, geometry.Vec3{}, geometry.Vec3{X: 10, Y: 10, Z: 10}, [3]bool{false, true, false})
	// The aneurysm wall: a curved triangulated dome (a shallow spherical
	// cap bulging into the region), exactly the kind of discretized
	// boundary the paper's DPD solver handles — "the boundary of a DPD
	// domain is discretized (e.g., triangulated)". The fluid sits outside
	// the sphere, so the outward normals already face it.
	domeCenter := geometry.Vec3{X: 5, Y: 5, Z: -8}
	dome := geometry.SphereSurface("fundusWall", domeCenter, 8.4, 24, 48)
	domeWall := dpd.NewSDFWall(dome,
		geometry.Vec3{X: -1, Y: -1, Z: -1}, geometry.Vec3{X: 11, Y: 11, Z: 3}, 0.25)
	sys.Walls = []dpd.Wall{
		domeWall,
		&dpd.PlaneWall{Point: geometry.Vec3{Z: 10}, Norm: geometry.Vec3{Z: -1}},
	}
	sys.FillRandom(2400, 0)
	inflow := &dpd.FluxBC{Axis: 0, AtMax: false, Rho: 3}
	outflow := &dpd.FluxBC{Axis: 0, AtMax: true, Rho: 3}
	sys.Inflows = []*dpd.FluxBC{inflow, outflow}

	// Thrombus model: adhesion sites on the damaged wall; Pivkin
	// activation delay.
	var sites []geometry.Vec3
	for x := 3.0; x <= 7; x++ {
		for y := 3.0; y <= 7; y += 2 {
			sites = append(sites, geometry.Vec3{X: x, Y: y, Z: 0.3})
		}
	}
	clot := platelet.NewModel(1, sites, 0.1)
	sys.Bonded = append(sys.Bonded, clot)
	rng := rand.New(rand.NewSource(11))
	platelet.SeedPlatelets(sys, clot, 60,
		geometry.Vec3{X: 0.5, Y: 0.5, Z: 0.3}, geometry.Vec3{X: 9.5, Y: 9.5, Z: 2.5}, rng.Float64)

	nsUnits := core.Units{L: 1e-3, Nu: 0.5}
	dpdUnits := core.Units{L: 2e-5, Nu: 0.2}
	gammaIn := geometry.PlanarRect("gammaIn", geometry.Vec3{},
		geometry.Vec3{Y: 10}, geometry.Vec3{Z: 10}, 3, 3)
	region := &core.AtomisticRegion{
		Name:          "fundus",
		Sys:           sys,
		Origin:        geometry.Vec3{X: 1.6, Y: 0.4, Z: 0.05}, // near the wall of patch B
		NSUnits:       nsUnits,
		DPDUnits:      dpdUnits,
		VelocityBoost: 120,
		Interfaces:    []*geometry.Surface{gammaIn},
		FluxFaces:     []*dpd.FluxBC{inflow},
	}

	meta := core.NewMetasolver()
	meta.Patches = []*core.ContinuumPatch{pa, pb}
	meta.Couplings = []*core.PatchCoupling{
		{Donor: pa, Receiver: pb, Face: "x0"},
		{Donor: pb, Receiver: pa, Face: "x1"},
	}
	meta.Atomistic = []*core.AtomisticRegion{region}

	fmt.Printf("aneurysm: 2 continuum patches (%d nodes each) + DPD fundus (%d particles, %d platelets)\n",
		sa.G.NumNodes(), len(sys.Particles), 60)
	fmt.Printf("Re (feeding artery) = %.0f equivalent at paper scale; exchange period = %d NS steps = %d DPD steps\n",
		394.0, meta.NSStepsPerExchange, meta.NSStepsPerExchange*meta.DPDStepsPerNS)

	fmt.Println("\nexchange   t_NS    clot(adhered) triggered  passive")
	for e := 0; e < *exchanges; e++ {
		if err := meta.Advance(1); err != nil {
			log.Fatal(err)
		}
		passive, triggered, adhered := clot.Counts(sys)
		fmt.Printf("%8d %6.2f %14d %9d %8d\n", e+1, sa.Time, adhered, triggered, passive)
	}

	if *checkIfaces {
		fmt.Println("\nFigure 9 diagnostics: interface continuity")
		// Continuum-continuum: compare patches on the overlap.
		var rms float64
		var n int
		for _, x := range []float64{1.1, 1.2, 1.3, 1.4} {
			for _, z := range []float64{0.25, 0.5, 0.75} {
				g := geometry.Vec3{X: x, Y: 0.5, Z: z}
				ua, va, wa := pa.SampleVelocity(g)
				ub, vb, wb := pb.SampleVelocity(g)
				d := geometry.Vec3{X: ua - ub, Y: va - vb, Z: wa - wb}
				rms += d.Norm2()
				n++
			}
		}
		fmt.Printf("continuum-continuum overlap RMS mismatch: %.3e over %d probes\n",
			math.Sqrt(rms/float64(n)), n)
		crms, cn := meta.InterfaceContinuity(region, 2.5)
		fmt.Printf("continuum-atomistic interface RMS mismatch: %.3e over %d probes (DPD units)\n", crms, cn)
	}
}
