// Pipeflow-WPOD: the window proper orthogonal decomposition experiments of
// §3.4 (Figures 7 and 8).
//
// A DPD pipe flow driven by a time-periodic body force (Figure 8's setup) is
// sampled into bin-averaged velocity snapshots every Nts steps. The WPOD of
// the snapshot window separates the eigenspectrum into fast-decaying
// correlated modes (the ensemble average) and the flat thermal tail; the
// program prints the eigenspectra of the streamwise and transverse velocity
// components, the profile reconstructed from the leading modes, the accuracy
// gain over standard averaging, and the PDF of the extracted fluctuations
// against a Gaussian fit (Figure 7). Healthy and diseased RBC membranes
// suspended in the flow reproduce the two cell populations of Figure 7.
//
// Run: go run ./examples/pipeflow-wpod [-snapshots N] [-nts N] [-rbc]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"nektarg/internal/dpd"
	"nektarg/internal/geometry"
	"nektarg/internal/rbc"
	"nektarg/internal/stats"
	"nektarg/internal/wpod"
)

func main() {
	nSnap := flag.Int("snapshots", 60, "POD window length (snapshots)")
	nts := flag.Int("nts", 50, "time steps averaged per snapshot")
	withRBC := flag.Bool("rbc", true, "suspend healthy and diseased RBCs in the flow")
	flag.Parse()

	// Pipe of radius 3 along z, periodic axially.
	const (
		radius = 3.0
		length = 6.0
		rho    = 3.0
	)
	params := dpd.DefaultParams(2) // species 0: solvent, 1: membrane
	params.Dt = 0.0025
	params.KBT = 0.4
	sys := dpd.NewSystem(params,
		geometry.Vec3{X: -radius - 0.5, Y: -radius - 0.5, Z: 0},
		geometry.Vec3{X: radius + 0.5, Y: radius + 0.5, Z: length},
		[3]bool{false, false, true})
	sys.Walls = []dpd.Wall{&dpd.CylinderWall{Center: geometry.Vec3{}, Radius: radius}}

	// Seed solvent only inside the pipe.
	target := int(math.Floor(rho * math.Pi * radius * radius * length))
	for len(sys.Particles) < target {
		sys.FillRandom(1, 0)
		p := sys.Particles[len(sys.Particles)-1].Pos
		if math.Hypot(p.X, p.Y) > radius-0.2 {
			sys.Particles = sys.Particles[:len(sys.Particles)-1]
		}
	}

	// Time-periodic driving force along z: "3D pipe flow driven by a
	// time-periodic force" (Figure 8).
	const (
		f0    = 0.35
		omega = 2 * math.Pi / 5.0
	)
	sys.External = func(t float64, _ *dpd.Particle) geometry.Vec3 {
		return geometry.Vec3{Z: f0 * (1 + 0.8*math.Sin(omega*t))}
	}

	var cells []*rbc.Membrane
	if *withRBC {
		cells = append(cells,
			rbc.NewMembrane(sys, geometry.Vec3{X: 0.8, Y: 0, Z: 1.5}, 0.9, 1, 1, rbc.Healthy(), 0.8),
			rbc.NewMembrane(sys, geometry.Vec3{X: -0.8, Y: 0.5, Z: 4.0}, 0.9, 1, 1, rbc.Diseased(), 0.8),
		)
		fmt.Printf("suspended %d RBCs (healthy + diseased, %d vertices each)\n",
			len(cells), len(cells[0].Idx))
	}
	fmt.Printf("pipe: R=%.1f L=%.1f, %d particles, dt=%.3f\n", radius, length, len(sys.Particles), params.Dt)

	// Equilibrate and develop the flow.
	sys.Run(1200)

	// Bins across the pipe diameter (x) at cell-free resolution ~rc.
	nbinsX := int(2 * radius)
	bins := dpd.NewBinGrid(
		geometry.Vec3{X: -radius, Y: -0.75, Z: 0},
		geometry.Vec3{X: radius, Y: 0.75, Z: length},
		nbinsX, 1, 3)

	snapsZ := make([][]float64, 0, *nSnap) // streamwise component
	snapsX := make([][]float64, 0, *nSnap) // transverse component
	for k := 0; k < *nSnap; k++ {
		for s := 0; s < *nts; s++ {
			sys.VVStep()
			bins.Accumulate(sys)
		}
		snap := bins.Snapshot()
		snapsZ = append(snapsZ, dpd.Component(snap, 2))
		snapsX = append(snapsX, dpd.Component(snap, 0))
	}

	rz, err := wpod.Analyze(snapsZ, wpod.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rx, err := wpod.Analyze(snapsX, wpod.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nFigure 8: POD eigenspectra (Nts=%d, Npod=%d)\n", *nts, *nSnap)
	fmt.Printf("%4s %14s %14s\n", "k", "lambda_z", "lambda_x")
	for k := 0; k < 10 && k < len(rz.Eigenvalues); k++ {
		fmt.Printf("%4d %14.5e %14.5e\n", k+1, rz.Eigenvalues[k], rx.Eigenvalues[k])
	}
	fmt.Printf("adaptive cutoffs: streamwise %d modes, transverse %d modes\n", rz.Cutoff, rx.Cutoff)
	fmt.Printf("spectral separation lambda_1/lambda_%d (streamwise): %.1fx\n",
		rz.Cutoff+1, rz.Eigenvalues[0]/rz.Eigenvalues[rz.Cutoff])

	// Profile reconstructed with the first two modes (Figure 8, top right);
	// averaged over the last quarter of the window to suppress bin noise.
	rec := rz.Reconstruct(2)
	fmt.Println("\nvelocity profile u_z(x) reconstructed from 2 POD modes:")
	q := len(rec) / 4
	for i := 0; i < nbinsX; i++ {
		x := -radius + (float64(i)+0.5)*2*radius/float64(nbinsX)
		var v float64
		var n int
		for t := len(rec) - q; t < len(rec); t++ {
			for k := 0; k < 3; k++ {
				v += rec[t][i+nbinsX*k]
				n++
			}
		}
		fmt.Printf("  x=%5.2f  u_z=%7.4f\n", x, v/float64(n))
	}

	// Figure 7: fluctuation PDF vs Gaussian.
	flucts := rz.Fluctuations()
	var mom stats.Moments
	for _, row := range flucts {
		mom.AddAll(row)
	}
	sigma := mom.StdDev()
	h := stats.NewHistogram(-4*sigma, 4*sigma, 40)
	for _, row := range flucts {
		h.AddAll(row)
	}
	fmt.Printf("\nFigure 7: PDF of streamwise velocity fluctuations\n")
	fmt.Printf("sigma = %.3f (paper reports a Gaussian with sigma = 1.03 in its units)\n", sigma)
	fmt.Printf("L2 distance to Gaussian(0, sigma): %.4f (to a 2.5x-wrong Gaussian: %.4f)\n",
		h.L2PDFDistance(0, sigma), h.L2PDFDistance(0, 2.5*sigma))

	// WPOD vs standard averaging: reconstruction tracks the time-varying
	// forcing, the long-time mean cannot.
	mean := bins.MeanVelocity()
	meanZ := dpd.Component(mean, 2)
	var stdErr, wpodSpread float64
	for t := range snapsZ {
		stdErr += stats.RMSE(meanZ, snapsZ[t])
		wpodSpread += stats.RMSE(rec[t], snapsZ[t])
	}
	fmt.Printf("\nresidual |snapshot - estimate| (lower = better tracking of u(t,x)):\n")
	fmt.Printf("  standard averaging: %.4f\n  WPOD (cutoff %d):    %.4f\n",
		stdErr/float64(len(snapsZ)), rz.Cutoff, wpodSpread/float64(len(snapsZ)))
}
