// Communication-layer benchmarks: collective latency of the in-process MPI
// runtime at several communicator sizes, plus the end-to-end MCI three-step
// interface exchange. The paper's claim (§3.1, Fig. 4) is that coupling
// overhead stays negligible as the core count grows; these benchmarks track
// how the collective algorithms scale with P (tree/recursive-doubling depth
// ~log P versus the O(P) rank-0 funnel).
//
// Two metrics are reported per operation:
//
//   - ns/op: wall-clock on the host. On a machine with fewer cores than
//     ranks this measures TOTAL work, not latency — all ranks share the
//     cores, so every algorithm doing Ω(P) aggregate sends appears linear
//     in P regardless of its depth.
//   - hops/op: the runtime's hop clock (mpi.Comm.Hops) — the critical-path
//     length in point-to-point operations, i.e. the latency the collective
//     would exhibit with one processor per rank. This is the quantity the
//     paper's scaling argument is about, and it is measured, not modeled:
//     every send and receive advances a Lamport-style clock.
//
// The *Funnel benchmarks reproduce the seed's rank-0 funnel topology on the
// identical runtime (same payload copies, same mailboxes) so the tree/ring
// rewrites have an in-tree baseline: compare BcastFunnel vs Bcast and
// AllreduceFunnel vs Allreduce at the same P.
//
// Each benchmark iteration spawns the ranks once and then runs commRounds
// collectives, so the goroutine setup cost is amortized identically across
// communicator sizes and implementations.
package nektarg_test

import (
	"fmt"
	"testing"

	"nektarg/internal/mci"
	"nektarg/internal/mpi"
)

// commRounds is the number of collective operations per mpi.Run; large enough
// that per-collective latency dominates rank spawn cost.
const commRounds = 50

// commSizes are the communicator sizes the paper's scaling argument spans in
// miniature.
var commSizes = []int{4, 16, 64}

// runWithHops runs body on p ranks and returns the maximum hop-clock value
// any rank accumulated — the critical-path length (in point-to-point
// operations) of everything body did.
func runWithHops(b *testing.B, p int, body func(w *mpi.Comm)) int {
	b.Helper()
	perRank := make([]int, p)
	if err := mpi.Run(p, func(w *mpi.Comm) {
		body(w)
		perRank[w.Rank()] = w.Hops()
	}); err != nil {
		b.Fatal(err)
	}
	max := 0
	for _, h := range perRank {
		if h > max {
			max = h
		}
	}
	return max
}

// benchCollective is the shared harness: b.N spawns, commRounds collectives
// per spawn, hop-depth reported per collective.
func benchCollective(b *testing.B, p int, body func(w *mpi.Comm)) {
	b.Helper()
	maxHops := 0
	for i := 0; i < b.N; i++ {
		if h := runWithHops(b, p, body); h > maxHops {
			maxHops = h
		}
	}
	b.ReportMetric(float64(maxHops)/commRounds, "hops/op")
}

func BenchmarkBcast(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			payload := make([]float64, 1024)
			benchCollective(b, p, func(w *mpi.Comm) {
				for r := 0; r < commRounds; r++ {
					var data any
					if w.Rank() == 0 {
						data = payload
					}
					got := w.Bcast(0, data).([]float64)
					if len(got) != 1024 {
						panic("bad bcast payload")
					}
				}
			})
		})
	}
}

// funnelBcast reproduces the seed's rank-0 funnel broadcast — the root sends
// to every other rank in turn — on the current runtime, with the same
// per-receiver payload copies the library now guarantees. It exists purely
// as a measured baseline for the binomial tree.
func funnelBcast(w *mpi.Comm, tag int, data []float64) []float64 {
	if w.Rank() == 0 {
		for dst := 1; dst < w.Size(); dst++ {
			w.Send(dst, tag, append([]float64(nil), data...))
		}
		return data
	}
	return w.Recv(0, tag).([]float64)
}

func BenchmarkBcastFunnel(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			payload := make([]float64, 1024)
			benchCollective(b, p, func(w *mpi.Comm) {
				for r := 0; r < commRounds; r++ {
					got := funnelBcast(w, r, payload)
					if len(got) != 1024 {
						panic("bad bcast payload")
					}
				}
			})
		})
	}
}

func BenchmarkAllreduce(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(w *mpi.Comm) {
				local := make([]float64, 256)
				for j := range local {
					local[j] = float64(w.Rank() + j)
				}
				for r := 0; r < commRounds; r++ {
					got := w.Allreduce(local, mpi.Sum)
					if len(got) != 256 {
						panic("bad allreduce payload")
					}
				}
			})
		})
	}
}

// funnelAllreduce reproduces the seed's rank-0 funnel allreduce — every rank
// sends its vector to the root, which folds and fans the result back out —
// as a measured baseline for recursive doubling.
func funnelAllreduce(w *mpi.Comm, tag int, local []float64) []float64 {
	if w.Rank() == 0 {
		acc := append([]float64(nil), local...)
		for src := 1; src < w.Size(); src++ {
			v := w.Recv(src, tag).([]float64)
			for i := range acc {
				acc[i] += v[i]
			}
		}
		for dst := 1; dst < w.Size(); dst++ {
			w.Send(dst, tag+1, append([]float64(nil), acc...))
		}
		return acc
	}
	w.Send(0, tag, append([]float64(nil), local...))
	return w.Recv(0, tag+1).([]float64)
}

func BenchmarkAllreduceFunnel(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(w *mpi.Comm) {
				local := make([]float64, 256)
				for j := range local {
					local[j] = float64(w.Rank() + j)
				}
				for r := 0; r < commRounds; r++ {
					got := funnelAllreduce(w, 2*r, local)
					if len(got) != 256 {
						panic("bad allreduce payload")
					}
				}
			})
		})
	}
}

func BenchmarkAllgather(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(w *mpi.Comm) {
				local := make([]float64, 64)
				for r := 0; r < commRounds; r++ {
					got := w.Allgather(local)
					if len(got) != w.Size() {
						panic("bad allgather result")
					}
				}
			})
		})
	}
}

func BenchmarkBarrier(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(w *mpi.Comm) {
				for r := 0; r < commRounds; r++ {
					w.Barrier()
				}
			})
		})
	}
}

// BenchmarkMCIExchange measures the full three-step interface exchange
// (gather to L4 root, root-to-root swap over World, scatter to peers) between
// two solver tasks of P/2 ranks each, every rank an interface member. The
// exchange spans several communicators (L3, L4, World), whose hop clocks are
// independent, so only wall-clock is reported here.
func BenchmarkMCIExchange(b *testing.B) {
	for _, p := range commSizes {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			half := p / 2
			cfg := mci.Config{Tasks: []mci.TaskSpec{
				{Name: "a", Ranks: half}, {Name: "b", Ranks: half},
			}}
			perRank := 128
			for i := 0; i < b.N; i++ {
				err := mpi.Run(p, func(w *mpi.Comm) {
					h, err := mci.Build(w, cfg)
					if err != nil {
						panic(err)
					}
					g, err := mci.NewInterfaceGroup(h, "io", true)
					if err != nil {
						panic(err)
					}
					peer := map[int]int{0: half, 1: 0}[h.Task]
					counts := make([]int, half)
					for j := range counts {
						counts[j] = perRank
					}
					local := make([]float64, perRank)
					for r := 0; r < commRounds/5; r++ {
						got := g.Exchange(h.World, peer, g.Salt(), local, counts)
						if len(got) != perRank {
							panic("bad exchange payload")
						}
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
