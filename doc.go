// Package nektarg is a from-scratch Go reproduction of "A new computational
// paradigm in multiscale simulations with applications to brain blood flow"
// (Grinberg, Morozov, Fedosov, Insley, Papka, Kumaran, Karniadakis; SC 2011):
// the NεκTαrG metasolver coupling a spectral-element Navier-Stokes solver
// (internal/nektar3d), a 1D arterial-network solver (internal/nektar1d) and a
// dissipative-particle-dynamics engine with red-blood-cell and platelet
// models (internal/dpd, internal/rbc, internal/platelet), glued by the
// Multilevel Communicating Interface (internal/mci) over an in-process
// message-passing runtime (internal/mpi), with window-POD post-processing
// (internal/wpod) and calibrated machine replays of the paper's scaling
// studies (internal/perfmodel).
//
// See README.md for a guide, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the per-table/figure reproduction record. The
// bench_test.go file in this directory regenerates every table and figure:
//
//	go test -bench=. -benchmem
//	go test -run 'TestTable|TestFigure' -v
package nektarg
